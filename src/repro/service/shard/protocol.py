"""The coordinator ↔ shard wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian length followed by that many bytes of
UTF-8 JSON.  The framing is deliberately boring — shards are trusted
local processes, the cost model is dominated by support computation, and
a self-describing text protocol keeps the chaos suite's torn-frame and
kill-mid-conversation scenarios debuggable from a hexdump.

Frame types (the ``t`` field):

==============  =========  ====================================================
type            direction  payload
==============  =========  ====================================================
``ready``       s → c      ``shard``, ``members``, ``replayed`` (WAL
                           records restored on start), ``compiles``
                           (closure compiles observed — must stay 0 when
                           closures were adopted)
``ask_batch``   c → s      ``asks``: list of ask objects, each ``qid``,
                           ``key``, ``facts`` (triples), ``start``
                           (member round-robin offset), ``quota``
``delta``       s → c      ``qid``, ``key``, ``shard``, ``runs``
                           (run-length-encoded ``[support, count]`` pairs)
``shutdown``    c → s      graceful stop; the shard flushes and exits
``stats``       s → c      final shard counters, sent in response to
                           ``shutdown`` just before exit
``ping``        c → s      heartbeat probe (``seq``); sent by the
                           supervisor after a silence interval
``pong``        s → c      heartbeat reply echoing ``seq``; any frame
                           counts as liveness, the pong just forces one
``reshard``     c → s      degraded-mode membership update: ``alive``
                           (surviving shard indexes) and ``quota`` (this
                           shard's new per-node answer quota)
``resharded``   s → c      acknowledges a ``reshard``: ``shard``,
                           ``members`` (the new local member count)
==============  =========  ====================================================

Support **runs** are the batching trick of the delta path: a shard never
ships one message per answer — it ships ``[[support, count], ...]``,
collapsing the (typically identical) answers of one quota into a pair.
``runs_merge``/``runs_total`` keep that encoding canonical.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any, Dict, List, Optional, Sequence

#: 4-byte big-endian frame length prefix
FRAME_HEADER = struct.Struct("!I")

#: refuse frames past this size — a corrupt length prefix must not make
#: the coordinator try to allocate gigabytes
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: a run-length-encoded list of (support, count) pairs
Runs = List[List[float]]


class ProtocolError(RuntimeError):
    """A malformed or oversized frame arrived on a shard connection."""


def send_frame(sock: socket.socket, payload: Dict[str, Any]) -> None:
    """Serialize and send one frame (blocking until fully written)."""
    data = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode(
        "utf-8"
    )
    if len(data) > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame of {len(data)} bytes exceeds the cap")
    sock.sendall(FRAME_HEADER.pack(len(data)) + data)


def recv_frame(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one frame; ``None`` on a clean EOF at a frame boundary.

    A connection that dies mid-frame (the kill-one-shard chaos case)
    raises :class:`ProtocolError` — the caller treats it exactly like a
    dead shard, never like a clean shutdown.
    """
    header = _recv_exact(sock, FRAME_HEADER.size, eof_ok=True)
    if header is None:
        return None
    (length,) = FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"incoming frame claims {length} bytes")
    body = _recv_exact(sock, length, eof_ok=False)
    assert body is not None
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"undecodable frame: {error}") from error
    if not isinstance(payload, dict) or "t" not in payload:
        raise ProtocolError("frame payload is not a typed object")
    return payload


def _recv_exact(
    sock: socket.socket, count: int, *, eof_ok: bool
) -> Optional[bytes]:
    chunks: List[bytes] = []
    remaining = count
    while remaining > 0:
        chunk = sock.recv(remaining)
        if not chunk:
            if eof_ok and not chunks:
                return None
            raise ProtocolError(
                f"connection closed {remaining} bytes into a "
                f"{count}-byte read"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ------------------------------------------------------------ support runs


def runs_merge(runs: Runs, support: float, count: int = 1) -> None:
    """Fold ``count`` answers of ``support`` into an RLE run list."""
    if count <= 0:
        return
    if runs and runs[-1][0] == support:
        runs[-1][1] += count
    else:
        runs.append([support, count])


def runs_total(runs: Sequence[Sequence[float]]) -> int:
    """Total answer count carried by a run list."""
    return int(sum(count for _, count in runs))


def runs_clip(runs: Sequence[Sequence[float]], limit: int) -> Runs:
    """The first ``limit`` answers of a run list, re-encoded."""
    out: Runs = []
    remaining = limit
    for support, count in runs:
        if remaining <= 0:
            break
        take = min(int(count), remaining)
        runs_merge(out, float(support), take)
        remaining -= take
    return out


# ------------------------------------------------------- frame constructors


def ready_frame(
    shard: int,
    members: int,
    replayed: int,
    compiles: int,
) -> Dict[str, Any]:
    return {
        "t": "ready",
        "shard": shard,
        "members": members,
        "replayed": replayed,
        "compiles": compiles,
    }


def ask_batch_frame(asks: List[Dict[str, Any]]) -> Dict[str, Any]:
    return {"t": "ask_batch", "asks": asks}


def ask_entry(
    qid: int,
    key: str,
    facts: List[List[str]],
    start: int,
    quota: int,
) -> Dict[str, Any]:
    return {"qid": qid, "key": key, "facts": facts, "start": start, "quota": quota}


def delta_frame(qid: int, key: str, shard: int, runs: Runs) -> Dict[str, Any]:
    return {"t": "delta", "qid": qid, "key": key, "shard": shard, "runs": runs}


def shutdown_frame() -> Dict[str, Any]:
    return {"t": "shutdown"}


def stats_frame(shard: int, counters: Dict[str, int]) -> Dict[str, Any]:
    return {"t": "stats", "shard": shard, "counters": counters}


def ping_frame(seq: int) -> Dict[str, Any]:
    return {"t": "ping", "seq": seq}


def pong_frame(shard: int, seq: int) -> Dict[str, Any]:
    return {"t": "pong", "shard": shard, "seq": seq}


def reshard_frame(alive: Sequence[int], quota: int) -> Dict[str, Any]:
    return {"t": "reshard", "alive": sorted(alive), "quota": quota}


def resharded_frame(shard: int, members: int) -> Dict[str, Any]:
    return {"t": "resharded", "shard": shard, "members": members}
