"""Kill-one-shard chaos campaigns for the process-sharded serving layer.

The sharded counterpart of :mod:`repro.faults.chaos`: each run serves a
multi-session campaign through a shard fleet, hard-kills one worker
process mid-flight (``SIGKILL`` — no shutdown handshake, no flush beyond
the WAL appends already on disk), restores it from its per-shard WAL and
requires the campaign to finish with the exact serial MSP set.  A
campaign sweeps that scenario over several seeds; any divergence,
timeout or untriggered kill fails the campaign.
"""

from __future__ import annotations

import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .simulation import run_sharded_simulation


def run_shard_chaos_once(
    *,
    seed: int,
    domain: str = "demo",
    shards: int = 3,
    sessions: int = 4,
    crowd_size: int = 6,
    sample_size: int = 3,
    kill_shard: Optional[int] = None,
    after_nodes: int = 5,
    durable_dir: Optional[Union[str, "Path"]] = None,
    max_runtime: float = 120.0,
) -> Dict[str, Any]:
    """One kill → WAL-restore → identical-MSP run; returns its verdict.

    ``kill_shard`` defaults to ``seed % shards`` so a multi-seed campaign
    rotates the victim.  ``durable_dir`` (the WAL home) is created as a
    temporary directory when omitted.
    """
    victim = kill_shard if kill_shard is not None else seed % shards
    if not 0 <= victim < shards:
        raise ValueError(f"kill_shard {victim} out of range for {shards} shards")

    def _run(wal_home: Union[str, Path]) -> Dict[str, Any]:
        return run_sharded_simulation(
            domain=domain,
            shards=shards,
            sessions=sessions,
            crowd_size=crowd_size,
            sample_size=sample_size,
            max_runtime=max_runtime,
            verify=True,
            seed=seed,
            durable_dir=wal_home,
            chaos_kill=(victim, after_nodes),
        )

    if durable_dir is None:
        with tempfile.TemporaryDirectory(prefix="shard-chaos-") as scratch:
            report = _run(scratch)
    else:
        home = Path(durable_dir)
        home.mkdir(parents=True, exist_ok=True)
        report = _run(home)

    chaos = report["chaos"]
    violations: List[str] = []
    if report["timed_out"]:
        violations.append("campaign hit max_runtime before settling")
    if not chaos["triggered"]:
        violations.append(
            f"kill never triggered: fewer than {after_nodes} nodes classified"
        )
    if not report["verified"]:
        violations.append(
            f"{len(report['mismatches'])} session(s) diverged from serial MSPs"
        )
    incomplete = [
        session_id
        for session_id, info in report["sessions"].items()
        if info["state"] != "completed"
    ]
    if incomplete:
        violations.append(f"unfinished sessions: {sorted(incomplete)}")
    return {
        "seed": seed,
        "shards": shards,
        "killed_shard": victim,
        "after_nodes": after_nodes,
        "triggered": chaos["triggered"],
        "reasks": chaos["reasks"],
        "wal_replayed": report["wal_replayed"],
        "sessions": sessions,
        "completed_sessions": sessions - len(incomplete),
        "questions_answered": report["questions_answered"],
        "elapsed_seconds": report["elapsed_seconds"],
        "ok": not violations,
        "violations": violations,
    }


def run_shard_chaos_campaign(
    seeds: Sequence[int] = (0, 1, 2),
    *,
    domain: str = "demo",
    durable_dir: Optional[str] = None,
    **options: Union[int, float, None],
) -> Dict[str, Any]:
    """Run :func:`run_shard_chaos_once` per seed; aggregate the verdict.

    ``durable_dir`` gets one subdirectory per seed so per-shard WALs
    never collide across runs.  Extra keyword options are forwarded
    verbatim.
    """
    reports: List[Dict[str, Any]] = []
    for seed in seeds:
        seed_dir = f"{durable_dir}/seed-{seed}" if durable_dir is not None else None
        reports.append(
            run_shard_chaos_once(
                seed=seed,
                domain=domain,
                durable_dir=seed_dir,
                **options,  # type: ignore[arg-type]
            )
        )
    return {
        "domain": domain,
        "seeds": list(seeds),
        "ok": all(report["ok"] for report in reports),
        "total_reasks": sum(report["reasks"] for report in reports),
        "reports": reports,
    }
