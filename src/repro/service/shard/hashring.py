"""Consistent-hash member → shard placement.

Members are placed on a classic consistent-hash ring: each shard owns
``replicas`` virtual points hashed around a 64-bit circle, and a member
belongs to the first shard point clockwise of the member's own hash.
Two properties matter here:

* **process-independence** — points come from SHA-1, never ``hash()``,
  so every process (coordinator, shards, a restored shard) computes the
  identical map with no shared state and no regard for
  ``PYTHONHASHSEED``;
* **stability under resharding** — growing ``shards`` by one moves only
  ``~1/shards`` of the members, which is what keeps per-shard WAL files
  mostly valid across capacity changes (see ``docs/SHARDING.md``).

The same churn path powers **degraded mode**: ``shard_of`` / ``partition``
accept an ``alive`` set, and a member whose clockwise owner is dead keeps
walking the ring to the next living shard — only the dead shard's members
move, survivors keep their partitions (and their WALs) bit-identical.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import AbstractSet, Dict, List, Optional, Sequence, Tuple

#: virtual points per shard; 64 keeps the max/min partition ratio tight
#: (~1.3 at 4 shards) while the ring stays a few hundred entries
DEFAULT_REPLICAS = 64


def _point(data: str) -> int:
    """A position on the 64-bit ring (the top of a SHA-1 digest)."""
    return int.from_bytes(
        hashlib.sha1(data.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """The member → shard map used by the sharded serving layer."""

    def __init__(self, shards: int, replicas: int = DEFAULT_REPLICAS) -> None:
        if shards < 1:
            raise ValueError("shards must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.shards = shards
        self.replicas = replicas
        points: List[Tuple[int, int]] = []
        for shard in range(shards):
            for replica in range(replicas):
                points.append((_point(f"shard-{shard}:{replica}"), shard))
        points.sort()
        self._points = [p for p, _ in points]
        self._owners = [s for _, s in points]

    def shard_of(
        self, member_id: str, alive: Optional[AbstractSet[int]] = None
    ) -> int:
        """The shard owning ``member_id`` (first point clockwise).

        With ``alive``, the walk skips points owned by dead shards and
        settles on the first *living* owner — the consistent-hash churn
        path: only the dead shard's members move.
        """
        if alive is not None and not alive:
            raise ValueError("alive set must not be empty")
        where = bisect.bisect_right(self._points, _point(member_id))
        for step in range(len(self._points)):
            index = (where + step) % len(self._points)
            owner = self._owners[index]
            if alive is None or owner in alive:
                return owner
        raise ValueError(f"no living shard owns any ring point: {alive}")

    def partition(
        self,
        member_ids: Sequence[str],
        alive: Optional[AbstractSet[int]] = None,
    ) -> List[List[str]]:
        """Split ``member_ids`` into per-shard lists, input order kept.

        Dead shards (not in ``alive``) get empty partitions; their
        members land on the next living shard clockwise.
        """
        parts: List[List[str]] = [[] for _ in range(self.shards)]
        for member_id in member_ids:
            parts[self.shard_of(member_id, alive)].append(member_id)
        return parts

    def counts(
        self,
        member_ids: Sequence[str],
        alive: Optional[AbstractSet[int]] = None,
    ) -> Dict[int, int]:
        """Members per shard — the balance diagnostic of ``docs/SHARDING.md``."""
        out = {shard: 0 for shard in range(self.shards)}
        for member_id in member_ids:
            out[self.shard_of(member_id, alive)] += 1
        return out


def split_quota(total: int, weights: Sequence[int]) -> List[int]:
    """Split ``total`` proportionally to ``weights`` (largest remainder).

    Used to divide one node's ``sample_size`` answer quota across shards
    in proportion to their member-partition sizes; deterministic, sums to
    exactly ``total``, and never assigns a shard more than its weight.
    """
    mass = sum(weights)
    if mass <= 0:
        raise ValueError("weights must have positive total")
    if total > mass:
        raise ValueError(f"cannot split quota {total} over {mass} members")
    shares = [total * w // mass for w in weights]
    remainders = [
        (total * w % mass, -index, index)
        for index, w in enumerate(weights)
    ]
    leftover = total - sum(shares)
    for _, _, index in sorted(remainders, reverse=True):
        if leftover == 0:
            break
        if shares[index] < weights[index]:
            shares[index] += 1
            leftover -= 1
    # a shard at its weight cap can push surplus onto later shards
    if leftover:
        for index, weight in enumerate(weights):
            room = weight - shares[index]
            if room > 0:
                take = min(room, leftover)
                shares[index] += take
                leftover -= take
                if leftover == 0:
                    break
    return shares
