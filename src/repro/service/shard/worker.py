"""The shard worker process: owns a member partition, answers asks.

``shard_main`` is the ``spawn`` entry point.  A shard is deliberately
*stateless about queries*: it receives ``(key, facts, start, quota)``
asks, computes the selected members' support for the instantiated
fact-set, journals every fresh answer to its own WAL, and ships the
result back as a run-length-encoded delta.  All query lifecycle —
traversal, classification, inference, MSP tracking — stays on the
coordinator.

Determinism is the whole protocol: the shard derives its member
partition from ``(crowd_size, shards, shard_index)`` through the same
:class:`~repro.service.shard.hashring.HashRing` the coordinator uses,
and selects members for an ask by round-robin from the coordinator's
``start`` offset.  A re-ask after a crash therefore selects the *same*
members, whose answers the restored WAL already holds — recovery is a
cache hit, never a divergence.

Closure bitsets are adopted read-only from the coordinator's shared
memory segment (see :mod:`repro.service.shard.closures`); the final
``stats`` frame reports the closure-compile counters so the coordinator
can assert shards never recompiled.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List

from ...crowd.journal import DurableCrowdCache
from ...crowd.member import CrowdMember
from ...crowd.questions import ConcreteQuestion
from ...observability import tracing
from ...ontology.facts import FactSet
from .closures import adopt_shared_closures
from .hashring import DEFAULT_REPLICAS, HashRing
from .protocol import (
    Runs,
    delta_frame,
    pong_frame,
    ready_frame,
    recv_frame,
    resharded_frame,
    runs_merge,
    send_frame,
    stats_frame,
)

#: counters a shard reports in its final ``stats`` frame
STAT_KEYS = ("asks", "answers", "computed", "cached", "replayed", "compiles")


def member_ids(crowd_size: int) -> List[str]:
    """The canonical member-id universe (matches ``build_identical_crowd``)."""
    return [f"m{index}" for index in range(crowd_size)]


def shard_main(spec: Dict[str, Any], sock: socket.socket) -> None:
    """Entry point of a spawned shard worker; serves until shutdown/EOF."""
    with tracing() as tracer:
        try:
            _serve(spec, sock, tracer)
        except (ConnectionResetError, BrokenPipeError):
            pass  # coordinator died mid-frame; exit as quietly as EOF
        finally:
            sock.close()


def _serve(spec: Dict[str, Any], sock: socket.socket, tracer: Any) -> None:
    from ..simulation import DOMAINS

    shard_index = int(spec["shard"])
    dataset = DOMAINS[str(spec["domain"])]()
    vocabulary = dataset.ontology.vocabulary
    if spec.get("closures"):
        adopt_shared_closures(str(spec["closures"]), vocabulary)

    ring = HashRing(
        int(spec["shards"]), int(spec.get("replicas", DEFAULT_REPLICAS))
    )
    mine = ring.partition(member_ids(int(spec["crowd_size"])))[shard_index]
    prototype = dataset.build_crowd(
        size=1,
        seed=int(spec["seed"]),
        noise=0.0,
        specialization_ratio=0.0,
        pruning_ratio=0.0,
        more_tip_ratio=0.0,
    )[0]
    members = {
        member_id: CrowdMember(member_id, prototype.database, vocabulary)
        for member_id in mine
    }

    # key -> member -> support; the WAL replay seeds this, so restored
    # shards answer re-asks from memory instead of recomputing
    known: Dict[str, Dict[str, float]] = {}
    wal = None
    replayed = 0
    if spec.get("wal"):
        wal = DurableCrowdCache(str(spec["wal"]), key_fn=str)
        for key in wal.assignments():
            for member_id, support in wal.answers_for(key):
                known.setdefault(str(key), {})[member_id] = support
                replayed += 1

    stats = {name: 0 for name in STAT_KEYS}
    stats["replayed"] = replayed
    try:
        send_frame(
            sock,
            ready_frame(
                shard_index, len(mine), replayed, _compiles(tracer)
            ),
        )
        while True:
            frame = recv_frame(sock)
            if frame is None:
                return  # coordinator vanished: exit quietly
            if frame["t"] == "shutdown":
                stats["compiles"] = _compiles(tracer)
                send_frame(sock, stats_frame(shard_index, stats))
                return
            if frame["t"] == "ping":
                send_frame(sock, pong_frame(shard_index, int(frame["seq"])))
                continue
            if frame["t"] == "reshard":
                # degraded mode: adopt the dead shards' members that the
                # alive-aware ring now hashes onto this partition; the
                # prototype database makes every member identical, so
                # adopted members answer exactly as the dead shard's
                # would have (the serial-identity precondition)
                alive = {int(index) for index in frame["alive"]}
                mine = ring.partition(
                    member_ids(int(spec["crowd_size"])), alive
                )[shard_index]
                for member_id in mine:
                    if member_id not in members:
                        members[member_id] = CrowdMember(
                            member_id, prototype.database, vocabulary
                        )
                send_frame(sock, resharded_frame(shard_index, len(mine)))
                continue
            if frame["t"] != "ask_batch":
                raise RuntimeError(f"unexpected frame type {frame['t']!r}")
            for ask in frame["asks"]:
                stats["asks"] += 1
                runs = _answer(ask, mine, members, known, wal, stats)
                send_frame(
                    sock,
                    delta_frame(
                        int(ask["qid"]), str(ask["key"]), shard_index, runs
                    ),
                )
    finally:
        if wal is not None:
            wal.close()


def _answer(
    ask: Dict[str, Any],
    mine: List[str],
    members: Dict[str, CrowdMember],
    known: Dict[str, Dict[str, float]],
    wal: "DurableCrowdCache | None",
    stats: Dict[str, int],
) -> Runs:
    """Collect ``quota`` member answers for one ask (WAL-backed, idempotent)."""
    key = str(ask["key"])
    quota = int(ask["quota"])
    if quota > len(mine):
        raise ValueError(
            f"ask quota {quota} exceeds shard partition of {len(mine)}"
        )
    fact_set = FactSet(tuple(triple) for triple in ask["facts"])
    answers = known.setdefault(key, {})
    start = int(ask["start"]) % len(mine)
    runs: Runs = []
    for offset in range(quota):
        member_id = mine[(start + offset) % len(mine)]
        support = answers.get(member_id)
        if support is None:
            question = ConcreteQuestion(key, fact_set)
            support = members[member_id].answer_concrete(question).support
            answers[member_id] = support
            if wal is not None:
                wal.record(key, member_id, support)
            stats["computed"] += 1
        else:
            stats["cached"] += 1
        runs_merge(runs, support)
    stats["answers"] += quota
    return runs


def _compiles(tracer: Any) -> int:
    return int(
        tracer.value("orders.closure.desc_compiles")
        + tracer.value("orders.closure.anc_compiles")
    )
