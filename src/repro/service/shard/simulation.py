"""Process-sharded simulations: the ``shards=N`` mode of ``run_simulation``.

Serves the same multi-session campaigns as
:func:`repro.service.simulation.run_simulation`, but through a
:class:`~repro.service.shard.coordinator.ShardCoordinator` fleet of
worker processes instead of a thread pool — the report keeps the same
shape (per-session states, questions, MSP counts, throughput) so the
CLI and benchmarks treat both modes interchangeably.

Correctness rides the identical oracle: with ``verify=True`` every
session's confirmed MSP set is compared against a serial
``engine.execute`` of the same query, exactly as the threaded runner is
verified.  ``chaos_kill=(shard, after_nodes)`` injects the kill-one-
shard → WAL-restore campaign mid-flight.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union
import os

from ...datasets.base import DomainDataset
from ...engine.engine import OassisEngine
from ..supervisor import ShardSupervisor, SupervisorConfig
from .coordinator import ShardCoordinator


def run_sharded_simulation(
    *,
    domain: str = "demo",
    shards: int = 2,
    sessions: int = 8,
    crowd_size: int = 6,
    sample_size: int = 3,
    thresholds: Optional[Sequence[float]] = None,
    max_runtime: float = 120.0,
    verify: bool = True,
    seed: int = 0,
    durable_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    batch_size: int = 8,
    max_outstanding: int = 32,
    chaos_kill: Optional[Tuple[int, int]] = None,
    chaos_kill_mode: str = "restore",
    supervise: bool = False,
    supervisor_config: Optional[SupervisorConfig] = None,
    verify_crowd_size: Optional[int] = None,
    _keep_handles: bool = False,
) -> Dict[str, Any]:
    """Serve ``sessions`` concurrent sessions through ``shards`` processes.

    ``chaos_kill=(shard, after_nodes)`` hard-kills the given shard once
    ``after_nodes`` nodes have been classified, then immediately restores
    it from its WAL — the campaign must still finish with the serial MSP
    set.  Requires ``durable_dir`` (the WAL home).

    ``chaos_kill_mode="supervised"`` kills without restoring and leaves
    recovery to the attached supervisor (requires ``supervise=True``):
    the heartbeat loop detects the corpse and restarts it automatically,
    which is the tentpole scenario of ``docs/RELIABILITY.md``.
    ``supervise=True`` attaches a
    :class:`~repro.service.supervisor.ShardSupervisor` so *any* shard
    death mid-campaign — injected or not — is detected and repaired.

    ``verify_crowd_size`` sizes the serial reference crowd of the oracle
    (default: ``crowd_size``).  With identical members the serial MSP set
    is crowd-size-invariant — any ``sample_size`` answers average to the
    same value — so large campaigns may verify against a smaller serial
    crowd without weakening the check, skipping the cost of building one
    ``MemberUser`` per member in ``engine.execute``.  Must still be
    ``>= sample_size``.
    """
    from ..simulation import DEFAULT_THRESHOLDS, DOMAINS, build_identical_crowd

    if domain not in DOMAINS:
        raise ValueError(f"unknown domain {domain!r}; pick from {sorted(DOMAINS)}")
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    if chaos_kill is not None and durable_dir is None:
        raise ValueError("chaos_kill requires durable_dir (the WAL home)")
    if chaos_kill_mode not in ("restore", "supervised"):
        raise ValueError("chaos_kill_mode must be 'restore' or 'supervised'")
    if chaos_kill_mode == "supervised" and not supervise:
        raise ValueError("chaos_kill_mode='supervised' requires supervise=True")
    serial_size = crowd_size if verify_crowd_size is None else verify_crowd_size
    if serial_size < sample_size:
        raise ValueError("verify_crowd_size must be at least sample_size")
    cycle = tuple(thresholds) if thresholds is not None else DEFAULT_THRESHOLDS
    dataset: DomainDataset = DOMAINS[domain]()
    engine = OassisEngine(dataset.ontology)

    chaos_state = {"triggered": False, "reasks": 0}

    def _chaos(coordinator: ShardCoordinator) -> None:
        assert chaos_kill is not None
        shard_index, after_nodes = chaos_kill
        if chaos_state["triggered"]:
            return
        if coordinator.nodes_classified < after_nodes:
            return
        chaos_state["triggered"] = True
        coordinator.kill_shard(shard_index)
        if chaos_kill_mode == "restore":
            chaos_state["reasks"] = coordinator.restore_shard(shard_index)
        # supervised mode: leave the corpse for the supervisor's tick

    supervisor = (
        ShardSupervisor(supervisor_config) if supervise else None
    )
    coordinator = ShardCoordinator(
        dataset,
        shards=shards,
        crowd_size=crowd_size,
        sample_size=sample_size,
        domain=domain,
        seed=seed,
        engine=engine,
        durable_dir=durable_dir,
        batch_size=batch_size,
        max_outstanding=max_outstanding,
        max_runtime=max_runtime,
        chaos_hook=_chaos if chaos_kill is not None else None,
        supervisor=supervisor,
    )
    queries: Dict[str, str] = {}
    try:
        coordinator.start()
        for index in range(sessions):
            threshold = cycle[index % len(cycle)]
            session_id = f"{domain}-{index}"
            queries[session_id] = dataset.query(threshold)
            coordinator.create_session(queries[session_id], session_id)
        coordinator.serve()
    finally:
        # stats frames are collected at close, so close before reporting;
        # _keep_handles callers still get the (closed) coordinator for
        # post-hoc queue/session inspection
        coordinator.close()
    report = coordinator.report()
    report["domain"] = domain
    report["crowd_size"] = crowd_size
    report["sample_size"] = sample_size
    if chaos_kill is not None:
        report["chaos"] = {
            "killed_shard": chaos_kill[0],
            "after_nodes": chaos_kill[1],
            "mode": chaos_kill_mode,
            "triggered": chaos_state["triggered"],
            "reasks": chaos_state["reasks"],
        }
    if verify:
        report["verified"], report["mismatches"] = _verify_against_serial(
            engine,
            coordinator,
            queries,
            dataset,
            serial_size,
            sample_size,
            seed,
            build_identical_crowd,
        )
    if _keep_handles:
        # live objects for invariant auditors; pop before serializing
        report["_coordinator"] = coordinator
    return report


def _verify_against_serial(
    engine: OassisEngine,
    coordinator: ShardCoordinator,
    queries: Dict[str, str],
    dataset: DomainDataset,
    crowd_size: int,
    sample_size: int,
    seed: int,
    build_identical_crowd: Any,
) -> Tuple[bool, List[Dict[str, Any]]]:
    """Compare each session's MSPs with a serial run of the same query."""
    mismatches: List[Dict[str, Any]] = []
    serial_cache: Dict[str, List[str]] = {}
    for session in coordinator.sessions():
        query = queries[session.session_id]
        if query not in serial_cache:
            baseline = build_identical_crowd(
                dataset, crowd_size, seed=seed, prefix="serial-m"
            )
            result = engine.execute(query, baseline, sample_size=sample_size)
            serial_cache[query] = sorted(repr(a) for a in result.all_msps)
        expected = serial_cache[query]
        got = sorted(repr(a) for a in session.queue.current_msps())
        if got != expected:
            mismatches.append(
                {
                    "session": session.session_id,
                    "state": session.state,
                    "expected": expected,
                    "got": got,
                }
            )
    return (not mismatches), mismatches
