"""ShardSupervisor: heartbeat monitoring + auto-restart over the fleet.

PR 7's chaos suite killed and resurrected shards *by hand* — a dead
shard stayed dead until a test harness called ``restore_shard``.  This
module closes the loop: a :class:`ShardSupervisor` attached to a
:class:`~repro.service.shard.coordinator.ShardCoordinator` is ticked
once per event-loop iteration (the coordinator stays single-threaded —
supervision is a poll, not a thread) and

* **detects death** three ways: the worker process exited (exit code),
  its socket hit EOF or a torn frame mid-serve (routed here via
  ``_on_shard_failure``), or the shard went silent and then missed a
  heartbeat — after ``heartbeat_interval`` without a frame the
  supervisor sends a ``ping``, and a ``pong`` not seen within
  ``heartbeat_timeout`` marks the shard unresponsive (the SIGSTOP'd
  hung-shard case) and kills it for real;
* **restarts** the dead shard through the coordinator's existing
  WAL-replay path (``restore_shard``), re-sending its in-flight asks;
  the detect→ready wall time is recorded as that incident's **MTTR**;
* **degrades** after the restart budget is spent: ``max_restarts``
  *failed* restore attempts retire the shard and re-hash its members
  onto survivors via the ring's churn path (``coordinator.degrade``),
  trading capacity for availability instead of crash-looping.

Determinism note: supervision changes *when* answers arrive, never
*what* they are — restored shards replay their WAL and re-hashed
members are rebuilt from the same prototype database — so the
serial-MSP-identity oracle holds through any kill/hang/restart schedule
(proven end to end by ``repro.faults.total_chaos``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, List, Optional

from ..observability import count as _obs_count, span as _obs_span

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a runtime cycle
    from .shard.coordinator import ShardCoordinator


@dataclass(frozen=True)
class SupervisorConfig:
    """Supervision knobs (see ``docs/RELIABILITY.md``).

    ``heartbeat_interval`` is how long a shard may stay silent before it
    is pinged; ``heartbeat_timeout`` how long an unanswered ping may
    hang before the shard is declared unresponsive and killed.
    ``max_restarts`` bounds *failed* restore attempts per shard before
    the supervisor degrades around it; ``restart_backoff`` is the base
    of the exponential pause between those attempts.
    """

    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 2.0
    max_restarts: int = 2
    restart_backoff: float = 0.05


class ShardSupervisor:
    """The fleet monitor; one instance per coordinator, ticked inline."""

    def __init__(self, config: Optional[SupervisorConfig] = None) -> None:
        self.config = config if config is not None else SupervisorConfig()
        #: every detected death: ``{"shard": i, "reason": ...}`` in order
        self.deaths: List[Dict[str, Any]] = []
        #: detect→ready wall seconds, one sample per successful restart
        self.restart_seconds: List[float] = []
        #: shards retired into degraded mode, in retirement order
        self.degraded: List[int] = []
        self.restarts = 0
        self._death_at: Dict[int, float] = {}
        self._failures: Dict[int, int] = {}
        self._next_attempt: Dict[int, float] = {}

    # -------------------------------------------------------------- reporting

    def record_death(self, index: int, reason: str) -> None:
        """Note a dead shard (called by the coordinator or by the tick)."""
        now = time.monotonic()
        if index not in self._death_at:
            self._death_at[index] = now
            self.deaths.append({"shard": index, "reason": reason})
            _obs_count("supervisor.deaths.detected")
        self._next_attempt.setdefault(index, now)

    def report(self) -> Dict[str, Any]:
        """The supervision summary embedded in coordinator reports."""
        samples = sorted(self.restart_seconds)
        return {
            "deaths": list(self.deaths),
            "restarts": self.restarts,
            "restart_failures": sum(self._failures.values()),
            "degraded": list(self.degraded),
            "restart_seconds": [round(s, 4) for s in self.restart_seconds],
            "restart_p95_seconds": (
                round(_percentile(samples, 0.95), 4) if samples else None
            ),
        }

    # ------------------------------------------------------------------- tick

    def tick(self, coordinator: "ShardCoordinator") -> None:
        """One supervision pass: detect, heartbeat, restart or degrade."""
        now = time.monotonic()
        self._detect_exits(coordinator)
        self._heartbeat(coordinator, now)
        self._recover(coordinator, now)

    def _detect_exits(self, coordinator: "ShardCoordinator") -> None:
        for handle in coordinator._handles:
            if not handle.alive or handle.process is None:
                continue
            if handle.process.is_alive():
                continue
            code = handle.process.exitcode
            coordinator._mark_dead(handle)
            self.record_death(handle.index, f"process exited (code {code})")

    def _heartbeat(self, coordinator: "ShardCoordinator", now: float) -> None:
        cfg = self.config
        for handle in coordinator._handles:
            if not handle.alive:
                continue
            if handle.ping_sent is not None:
                _seq, sent_at = handle.ping_sent
                if now - sent_at > cfg.heartbeat_timeout:
                    _obs_count("supervisor.heartbeats.missed")
                    coordinator._mark_dead(handle)
                    self.record_death(handle.index, "missed heartbeat")
            elif now - handle.last_seen > cfg.heartbeat_interval:
                if coordinator.ping_shard(handle.index):
                    _obs_count("supervisor.heartbeats.sent")

    def _recover(self, coordinator: "ShardCoordinator", now: float) -> None:
        cfg = self.config
        for handle in coordinator._handles:
            if handle.alive or handle.retired:
                continue
            index = handle.index
            if index not in self._death_at:
                # killed outside our watch (e.g. a chaos hook's
                # kill_shard); adopt the incident so it gets restarted
                self.record_death(index, "found dead")
            if now < self._next_attempt.get(index, now):
                continue
            if self._failures.get(index, 0) >= cfg.max_restarts:
                self._degrade(coordinator, index)
                continue
            try:
                with _obs_span("supervisor.restart"):
                    coordinator.restore_shard(index)
            except Exception:
                failures = self._failures.get(index, 0) + 1
                self._failures[index] = failures
                _obs_count("supervisor.restart.failures")
                coordinator._mark_dead(handle)
                self._next_attempt[index] = now + cfg.restart_backoff * (
                    2.0 ** (failures - 1)
                )
                continue
            self.restarts += 1
            _obs_count("supervisor.restarts")
            died_at = self._death_at.pop(index, now)
            self._next_attempt.pop(index, None)
            self.restart_seconds.append(time.monotonic() - died_at)

    def _degrade(self, coordinator: "ShardCoordinator", index: int) -> None:
        moved = coordinator.degrade(index)
        self.degraded.append(index)
        self._death_at.pop(index, None)
        self._next_attempt.pop(index, None)
        _obs_count("supervisor.degraded")
        _obs_count("supervisor.members.rehashed", moved)


def _percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile of an ascending sample list."""
    if not sorted_samples:
        raise ValueError("no samples")
    rank = max(0, min(len(sorted_samples) - 1, int(q * len(sorted_samples))))
    return sorted_samples[rank]


__all__ = ["ShardSupervisor", "SupervisorConfig"]
