"""Tunables of the concurrent crowd-serving layer."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class ServiceConfig:
    """Dispatch, deadline and retry policy of a :class:`SessionManager`.

    All times are in the units of the manager's injected clock (seconds
    for the default ``time.monotonic``).
    """

    #: how long a dispatched question may stay unanswered before it is
    #: reaped, requeued and (eventually) reassigned
    question_timeout: float = 30.0
    #: scale each question's deadline by its position in the member's
    #: in-flight queue: the n-th simultaneously held question gets
    #: ``n * question_timeout``.  A member answering a batch serially
    #: cannot start question n before finishing the n-1 before it, so a
    #: fixed per-question clock times out questions the member was never
    #: slow on (the ~20%% timeout/requeue churn of the 1-worker
    #: benchmark).  Disable to restore the fixed-deadline behaviour.
    scale_deadlines: bool = True
    #: how many times the *same* member is asked the same question before
    #: the node is abandoned for them and reassigned to another member
    max_attempts: int = 3
    #: first retry waits ``backoff_base``; attempt ``n`` waits
    #: ``backoff_base * 2 ** (n - 1)`` before the question is re-dispatched
    #: to the same member (exponential backoff)
    backoff_base: float = 0.25
    #: cap on a member's simultaneously outstanding questions, summed
    #: across every session they serve
    in_flight_limit: int = 4
    #: default ``k`` of :meth:`SessionManager.next_batch`
    batch_size: int = 2
    #: sliding window (events) of the per-member circuit breaker;
    #: 0 disables the breaker entirely (the default — opt-in feature)
    breaker_window: int = 0
    #: failure rate over the window that trips the breaker open
    breaker_failure_threshold: float = 0.5
    #: quarantine duration before a half-open probe is admitted
    breaker_cooldown: float = 5.0
    #: minimum events in the window before the rate is meaningful
    breaker_min_events: int = 4

    def __post_init__(self) -> None:
        if self.question_timeout <= 0:
            raise ValueError("question_timeout must be positive")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")
        if self.backoff_base < 0:
            raise ValueError("backoff_base must be non-negative")
        if self.in_flight_limit < 1:
            raise ValueError("in_flight_limit must be at least 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be at least 1")
        if self.breaker_window < 0:
            raise ValueError("breaker_window must be non-negative (0 disables)")
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ValueError("breaker_failure_threshold must be in (0, 1]")
        if self.breaker_cooldown < 0:
            raise ValueError("breaker_cooldown must be non-negative")
        if self.breaker_min_events < 1:
            raise ValueError("breaker_min_events must be at least 1")

    def override(self, **changes: object) -> "ServiceConfig":
        """A copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)
