"""One live query session: a locked QueueManager plus its crowd cache.

A :class:`QuerySession` is the unit the :class:`~repro.service.manager.
SessionManager` multiplexes members across.  It owns

* the per-query :class:`~repro.engine.queue_manager.QueueManager` (the
  traversal stacks, classification state and aggregator),
* the session's :class:`~repro.crowd.cache.CrowdCache` (every answer paid
  for, the source of snapshot/resume), and
* **the session lock** — the documented locking contract: neither the
  queue manager nor its :class:`~repro.mining.state.ClassificationState`
  is internally synchronized (even ``status()`` mutates memos), so every
  read and write goes through this one re-entrant lock.  All public
  methods of this class take it; callers may also take it explicitly to
  group several calls into one atomic step.

Lock ordering (see ``docs/SERVICE.md``): the manager lock and a session
lock are never held at the same time — manager-level bookkeeping and
session-level traversal are separate critical sections, so sessions never
deadlock against the manager or against each other.
"""

from __future__ import annotations

import enum
import os
from collections import defaultdict
from typing import Collection, Dict, Iterable, List, Optional, Tuple, Union

from ..analysis.lockcheck import named_rlock
from ..assignments.assignment import Assignment
from ..crowd.cache import CrowdCache
from ..engine.queue_manager import AnswerOutcome, PendingQuestion, QueueManager
from ..engine.results import QueryResult, build_result
from ..oassisql.ast import Query
from ..observability import atomic_write_json, count as _obs_count
from ..vocabulary.terms import Term

#: schema version of the session checkpoint file
CHECKPOINT_VERSION = 1


class SessionState(enum.Enum):
    """Lifecycle of a query session."""

    OPEN = "open"
    COMPLETED = "completed"
    CANCELLED = "cancelled"


class QuerySession:
    """A single query being mined by the crowd, safe to drive concurrently."""

    def __init__(
        self,
        session_id: str,
        query: Query,
        queue: QueueManager,
        cache: CrowdCache,
        include_invalid: bool = False,
        query_text: Optional[str] = None,
        sample_size: Optional[int] = None,
    ) -> None:
        self.session_id = session_id
        self.query = query
        self.queue = queue
        self.cache = cache
        self.include_invalid = include_invalid
        #: the original OASSIS-QL text, when known — required for
        #: checkpoint/restore (the AST has no serializer)
        self.query_text = query_text
        self.sample_size = sample_size
        self.lock = named_rlock("service.session")
        self.state = SessionState.OPEN
        self.resumed_answers = 0
        # member -> cached (assignment, support) pairs, filled on resume so
        # late-attaching members start from the cached frontier
        self._cached_by_member: Dict[str, List[Tuple[Assignment, float]]] = {}
        # checkpointing (enable_checkpoints); guarded by the session lock
        self._checkpoint_path: Optional[str] = None
        self._checkpoint_every = 0
        self._recorded_since_checkpoint = 0

    def __repr__(self) -> str:
        return f"QuerySession({self.session_id!r}, {self.state.value})"

    # ------------------------------------------------------------- lifecycle

    def resume_from_cache(self) -> int:
        """Preload every cached answer (snapshot resume); returns the count.

        Feeds the aggregator and classification state once per cached
        answer — the verdicts of the previous run are reconstructed before
        any member is attached.  Per-member answer maps are seeded later,
        at attach time (:meth:`ensure_member`), so nothing double-counts.
        """
        with self.lock:
            by_member: Dict[str, List[Tuple[Assignment, float]]] = defaultdict(list)
            count = 0
            for assignment in list(self.cache.assignments()):
                for member_id, support in self.cache.answers_for(assignment):
                    self.queue.preload(assignment, member_id, support)
                    by_member[member_id].append((assignment, support))
                    count += 1
            self._cached_by_member = dict(by_member)
            self.resumed_answers = count
            return count

    def ensure_member(self, member_id: str) -> None:
        """Register a member; on resumed sessions, seed their cached answers."""
        with self.lock:
            fresh = not self.queue.is_registered(member_id)
            self.queue.register_member(member_id)
            if fresh:
                for assignment, support in self._cached_by_member.get(member_id, ()):
                    self.queue.mark_answered(member_id, assignment, support)

    def complete(self) -> bool:
        with self.lock:
            if self.state is not SessionState.OPEN:
                return False
            self.state = SessionState.COMPLETED
            return True

    def cancel(self) -> bool:
        with self.lock:
            if self.state is not SessionState.OPEN:
                return False
            self.state = SessionState.CANCELLED
            return True

    @property
    def open(self) -> bool:
        return self.state is SessionState.OPEN

    # -------------------------------------------------------------- dispatch

    def next_fresh(
        self, member_id: str, k: int, exclude: Collection[Assignment] = ()
    ) -> List[PendingQuestion]:
        """Up to ``k`` not-yet-dispatched questions for ``member_id``."""
        with self.lock:
            if self.state is not SessionState.OPEN:
                return []
            return self.queue.next_batch(
                member_id, k, fresh_only=True, exclude=exclude
            )

    def submit(
        self, member_id: str, assignment: Assignment, support: float
    ) -> AnswerOutcome:
        with self.lock:
            if self.state is not SessionState.OPEN:
                return AnswerOutcome.STALE
            outcome = self.queue.submit_support(member_id, support, assignment)
            if outcome is AnswerOutcome.RECORDED:
                self._note_recorded()
            return outcome

    def prune(
        self, member_id: str, value: Term, assignment: Assignment
    ) -> AnswerOutcome:
        with self.lock:
            if self.state is not SessionState.OPEN:
                return AnswerOutcome.STALE
            outcome = self.queue.submit_prune(member_id, value, assignment)
            if outcome is AnswerOutcome.PRUNED:
                self._note_recorded()
            return outcome

    def expire(self, member_id: str, assignment: Assignment) -> bool:
        """Return a timed-out question to the member's queue."""
        with self.lock:
            return bool(self.queue.expire_pending(member_id, assignment))

    def skip(self, member_id: str, assignment: Assignment) -> None:
        """Abandon the node for this member (retries exhausted / passed)."""
        with self.lock:
            self.queue.skip_node(member_id, assignment)

    def reassign(self, member_id: str, assignment: Assignment) -> bool:
        """Queue an abandoned node for another member."""
        with self.lock:
            if self.state is not SessionState.OPEN:
                return False
            return self.queue.requeue_for(member_id, assignment)

    def detach(self, member_id: str) -> List[Assignment]:
        """Release the member's structures; returns their abandoned nodes."""
        with self.lock:
            return self.queue.detach_member(member_id)

    # ------------------------------------------------------------ completion

    def has_work(self, member_ids: Iterable[str]) -> bool:
        """Is there anything left to dispatch or wait for?

        True when a question is still handed out, or any of the given
        members could still be asked something fresh.
        """
        with self.lock:
            if self.queue.has_pending():
                return True
            return any(self.queue.has_fresh_work(m) for m in member_ids)

    # --------------------------------------------------------------- results

    def msps(self) -> List[Assignment]:
        """All confirmed MSPs so far (valid and near-miss)."""
        with self.lock:
            return self.queue.current_msps()

    def valid_msps(self) -> List[Assignment]:
        with self.lock:
            return self.queue.current_valid_msps()

    def questions_asked(self) -> int:
        with self.lock:
            return self.queue.questions_asked

    def result(self) -> QueryResult:
        """The session's answer set as a standard :class:`QueryResult`."""
        with self.lock:
            return build_result(
                self.query,
                self.queue.space,
                self.queue.current_msps(),
                self.queue.questions_asked,
                support_of=self.queue.aggregator.average_support,
                include_invalid=self.include_invalid,
            )

    def snapshot(self) -> CrowdCache:
        """A point-in-time copy of the session's answer cache.

        Feeding the copy to ``create_session(..., cache=snapshot,
        resume=True)`` later reconstructs the aggregator state without
        re-asking the crowd.
        """
        with self.lock:
            return self.cache.snapshot()

    # ----------------------------------------------------------- checkpoints

    def enable_checkpoints(
        self, path: Union[str, "os.PathLike[str]"], *, every: int = 10
    ) -> None:
        """Write a session checkpoint to ``path`` every ``every`` answers.

        The checkpoint is tiny metadata (query text, sample size, session
        id) written atomically; the *answers* live in the WAL journal.
        Together they are everything :func:`repro.service.recovery.
        restore_session` needs to resume a killed process.  Requires the
        session to know its ``query_text``.
        """
        if every < 1:
            raise ValueError("every must be at least 1")
        if self.query_text is None:
            raise ValueError(
                "checkpointing requires query_text (create the session "
                "from an OASSIS-QL string, not a parsed Query)"
            )
        with self.lock:
            self._checkpoint_path = os.fspath(path)
            self._checkpoint_every = every
        self.write_checkpoint()

    def checkpoint_payload(self) -> Dict[str, object]:
        """The JSON-serializable restore metadata (see ``docs/RELIABILITY.md``)."""
        with self.lock:
            return {
                "version": CHECKPOINT_VERSION,
                "session_id": self.session_id,
                "query": self.query_text,
                "sample_size": self.sample_size,
                "include_invalid": self.include_invalid,
                "questions_asked": self.queue.questions_asked,
                "state": self.state.value,
            }

    def write_checkpoint(self) -> bool:
        """Force a checkpoint write now; False when checkpointing is off."""
        with self.lock:
            if self._checkpoint_path is None:
                return False
            payload = self.checkpoint_payload()
            atomic_write_json(self._checkpoint_path, payload)
            self._recorded_since_checkpoint = 0
        _obs_count("recovery.checkpoints.written")
        return True

    def _note_recorded(self) -> None:
        """Count an applied answer; periodically checkpoint.  Lock held."""
        if self._checkpoint_path is None:
            return
        self._recorded_since_checkpoint += 1
        if self._recorded_since_checkpoint >= self._checkpoint_every:
            self.write_checkpoint()
