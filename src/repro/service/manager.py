"""SessionManager: many concurrent query sessions, one shared crowd.

The serving counterpart of the batch engine: where
:meth:`~repro.engine.engine.OassisEngine.execute` drives a fixed crowd
through one query to completion, a :class:`SessionManager` hosts many
:class:`~repro.service.session.QuerySession` instances at once and
multiplexes a changing pool of crowd members across them —

* **batched dispatch** — :meth:`next_batch` hands a member up to ``k``
  questions, drawn round-robin across their open sessions, bounded by the
  member's cross-session in-flight limit;
* **deadlines and retries** — every dispatched question carries a
  deadline; :meth:`reap_expired` requeues overdue questions with
  exponential backoff and, once ``max_attempts`` is exhausted, abandons
  the node for that member and reassigns it to another;
* **departures** — :meth:`detach_member` reassigns the member's pending
  questions and releases their per-session traversal structures; sessions
  degrade gracefully (a session with nobody left to ask completes with
  whatever was classified);
* **lifecycle** — :meth:`create_session` (optionally resuming from a
  cache snapshot), :meth:`cancel_session`, :meth:`snapshot`.

Locking contract (see ``docs/SERVICE.md``): the manager lock guards only
registry and dispatch bookkeeping (sessions, members, in-flight map,
backoff windows, attempt counts); each session's lock guards its queue
manager and classification state.  **The two are never held together**,
which rules out lock-order deadlocks by construction.  The cost is a
benign race: concurrent ``next_batch`` calls for the *same* member may
transiently overshoot ``in_flight_limit`` by the number of concurrent
callers — the :class:`~repro.service.runner.ServiceRunner` rotation gives
each member to one worker at a time, making the limit exact in practice.

Everything here emits ``service.*`` counters and spans; see
``docs/OBSERVABILITY.md`` and :func:`repro.observability.derive_service`.
"""

from __future__ import annotations

import math
import time
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Tuple,
    Union,
)

from ..analysis.lockcheck import named_lock
from ..assignments.assignment import Assignment
from ..crowd.cache import CrowdCache
from ..engine.queue_manager import AnswerOutcome, PendingQuestion
from ..faults.breaker import BreakerState, CircuitBreaker
from ..faults.plan import FaultKind, FaultPlan
from ..oassisql.ast import Query
from ..observability import count as _obs_count, span as _obs_span
from ..ontology.facts import Fact, FactSet
from ..vocabulary.terms import Term
from .config import ServiceConfig
from .session import QuerySession

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.engine import OassisEngine

#: identifies one dispatched question: (session_id, member_id, assignment)
DispatchKey = Tuple[str, str, Assignment]


class DispatchedQuestion:
    """A question handed to a member by the service, with its deadline."""

    __slots__ = (
        "session_id",
        "member_id",
        "assignment",
        "text",
        "fact_set",
        "attempt",
        "issued_at",
        "deadline",
    )

    def __init__(
        self,
        session_id: str,
        member_id: str,
        assignment: Assignment,
        text: str,
        fact_set: Optional[FactSet],
        attempt: int,
        issued_at: float,
        deadline: float,
    ) -> None:
        self.session_id = session_id
        self.member_id = member_id
        self.assignment = assignment
        self.text = text
        self.fact_set = fact_set
        self.attempt = attempt
        self.issued_at = issued_at
        self.deadline = deadline

    @property
    def key(self) -> DispatchKey:
        return (self.session_id, self.member_id, self.assignment)

    def __repr__(self) -> str:
        return (
            f"DispatchedQuestion({self.session_id!r}, {self.member_id!r}, "
            f"{self.assignment!r}, attempt={self.attempt})"
        )


class SessionManager:
    """Hosts concurrent query sessions over one engine's ontology."""

    def __init__(
        self,
        engine: "OassisEngine",
        *,
        config: Optional[ServiceConfig] = None,
        clock: Optional[Callable[[], float]] = None,
        faults: Optional[FaultPlan] = None,
        **overrides: object,
    ) -> None:
        self.engine = engine
        base = config if config is not None else ServiceConfig()
        self.config = base.override(**overrides) if overrides else base
        self.clock = clock if clock is not None else time.monotonic
        #: the fault-injection plan consulted at ``manager.*`` sites
        #: (None = production: the sites cost one pointer check)
        self.faults = faults
        self._lock = named_lock("service.manager")
        self._sessions: Dict[str, QuerySession] = {}
        self._members: List[str] = []
        self._in_flight: Dict[DispatchKey, DispatchedQuestion] = {}
        self._backoff: Dict[DispatchKey, float] = {}  # key -> not-before
        self._attempts: Dict[DispatchKey, int] = {}
        self._cursor: Dict[str, int] = {}  # member -> round-robin position
        self._breakers: Dict[str, CircuitBreaker] = {}
        self._next_id = 0

    # ------------------------------------------------------------- sessions

    def create_session(
        self,
        query: Union[str, Query],
        *,
        session_id: Optional[str] = None,
        cache: Optional[CrowdCache] = None,
        resume: bool = False,
        sample_size: Optional[int] = None,
        more_pool: Iterable[Fact] = (),
        include_invalid: bool = False,
    ) -> QuerySession:
        """Open a session for ``query`` and register the attached members.

        With ``resume=True`` the given ``cache`` (a prior session's
        :meth:`~QuerySession.snapshot` or live cache) is preloaded: the
        aggregator verdicts of the previous run are reconstructed and
        attached members continue from the cached frontier instead of
        re-answering.
        """
        store = cache if cache is not None else CrowdCache()
        parsed = self.engine._as_query(query)
        queue = self.engine.queue_manager(
            parsed, sample_size=sample_size, cache=store, more_pool=more_pool
        )
        with self._lock:
            if session_id is None:
                self._next_id += 1
                session_id = f"s{self._next_id}"
            if session_id in self._sessions:
                raise ValueError(f"session {session_id!r} already exists")
            members = list(self._members)
        session = QuerySession(
            session_id,
            parsed,
            queue,
            store,
            include_invalid=include_invalid,
            query_text=query if isinstance(query, str) else None,
            sample_size=sample_size,
        )
        if resume:
            session.resume_from_cache()
            _obs_count("service.sessions.resumed")
        else:
            _obs_count("service.sessions.created")
        for member_id in members:
            session.ensure_member(member_id)
        with self._lock:
            self._sessions[session_id] = session
        return session

    def session(self, session_id: str) -> QuerySession:
        with self._lock:
            return self._sessions[session_id]

    def sessions(self) -> List[QuerySession]:
        with self._lock:
            return list(self._sessions.values())

    def cancel_session(self, session_id: str) -> bool:
        """Stop a session; its in-flight and backoff entries are dropped."""
        with self._lock:
            session = self._sessions.get(session_id)
            self._drop_keys(lambda key: key[0] == session_id)
        if session is None or not session.cancel():
            return False
        _obs_count("service.sessions.cancelled")
        return True

    def snapshot(self, session_id: str) -> CrowdCache:
        """A resumable copy of the session's collected answers."""
        return self.session(session_id).snapshot()

    # -------------------------------------------------------------- members

    def attach_member(self, member_id: str) -> bool:
        """Make ``member_id`` available to every open session (idempotent)."""
        with self._lock:
            if member_id in self._members:
                return False
            self._members.append(member_id)
            if self.config.breaker_window > 0 and member_id not in self._breakers:
                self._breakers[member_id] = CircuitBreaker(
                    window=self.config.breaker_window,
                    failure_threshold=self.config.breaker_failure_threshold,
                    cooldown=self.config.breaker_cooldown,
                    min_events=self.config.breaker_min_events,
                )
            sessions = [s for s in self._sessions.values() if s.open]
        for session in sessions:
            session.ensure_member(member_id)
        _obs_count("service.members.attached")
        return True

    def detach_member(self, member_id: str) -> int:
        """Handle a departure; returns how many nodes were reassigned.

        The member's pending and in-flight questions are abandoned and
        reassigned to other attached members; their traversal structures
        are released in every session (the leak fix — see
        :meth:`repro.engine.queue_manager.QueueManager.detach_member`).
        """
        with self._lock:
            if member_id not in self._members:
                return 0
            self._members.remove(member_id)
            self._cursor.pop(member_id, None)
            self._breakers.pop(member_id, None)
            dropped = self._drop_keys(lambda key: key[1] == member_id)
            sessions = [s for s in self._sessions.values() if s.open]
        _obs_count("service.members.departed")
        in_flight_nodes: Dict[str, List[Assignment]] = {}
        for key in dropped:
            in_flight_nodes.setdefault(key[0], []).append(key[2])
        reassigned = 0
        for session in sessions:
            abandoned = session.detach(member_id)
            abandoned.extend(in_flight_nodes.get(session.session_id, ()))
            for node in abandoned:
                if self._reassign(session, node, exclude_member=member_id):
                    reassigned += 1
            self._maybe_complete(session)
        return reassigned

    def members(self) -> List[str]:
        with self._lock:
            return list(self._members)

    # ------------------------------------------------------------- dispatch

    def next_batch(self, member_id: str, k: Optional[int] = None) -> List[DispatchedQuestion]:
        """Up to ``k`` questions for ``member_id``, round-robin over sessions.

        Honors the member's cross-session in-flight limit and skips nodes
        whose retry backoff window has not elapsed.  Returns ``[]`` when
        the member has nothing to do right now (everything dry, in
        backoff, or at the in-flight cap).
        """
        self.reap_expired()
        now = self.clock()
        if (
            self.faults is not None
            and self.faults.decide("manager.dispatch", member_id)
            is FaultKind.TIMEOUT
        ):
            # injected dispatch stall: the member gets nothing this round
            return []
        with self._lock:
            if member_id not in self._members:
                raise KeyError(f"member {member_id!r} is not attached")
            breaker = self._breakers.get(member_id)
            if breaker is not None and not breaker.allow(now):
                _obs_count("recovery.breaker.short_circuited")
                return []
            held = sum(1 for key in self._in_flight if key[1] == member_id)
            want = min(
                k if k is not None else self.config.batch_size,
                self.config.in_flight_limit - held,
            )
            if breaker is not None and breaker.state is BreakerState.HALF_OPEN:
                want = min(want, 1)  # a single probe decides the next state
            sessions = [s for s in self._sessions.values() if s.open]
            if want <= 0 or not sessions:
                if breaker is not None:
                    breaker.probe_aborted()
                return []
            start = self._cursor.get(member_id, 0) % len(sessions)
            self._cursor[member_id] = start + 1
            order = sessions[start:] + sessions[:start]
            # nodes of this member still inside a backoff window, per session
            deferred: Dict[str, List[Assignment]] = {}
            for key, not_before in self._backoff.items():
                if key[1] == member_id and not_before > now:
                    deferred.setdefault(key[0], []).append(key[2])
        batch: List[DispatchedQuestion] = []
        with _obs_span("service.dispatch"):
            progress = True
            while len(batch) < want and progress:
                progress = False
                for session in order:
                    if len(batch) >= want:
                        break
                    fresh = session.next_fresh(
                        member_id, 1, exclude=deferred.get(session.session_id, ())
                    )
                    for question in fresh:
                        progress = True
                        batch.append(
                            self._issue(session.session_id, question, now)
                        )
        if batch:
            _obs_count("service.questions.dispatched", len(batch))
        elif breaker is not None:
            with self._lock:
                breaker.probe_aborted()
        return batch

    def _issue(
        self, session_id: str, question: PendingQuestion, now: float
    ) -> DispatchedQuestion:
        key = (session_id, question.member_id, question.assignment)
        with self._lock:
            attempt = self._attempts.get(key, 0) + 1
            self._attempts[key] = attempt
            self._backoff.pop(key, None)
            window = self.config.question_timeout
            if self.config.scale_deadlines:
                # the n-th question a member holds cannot even be looked
                # at before the n-1 ahead of it are answered; its clock
                # gets n timeout windows, not one (see ServiceConfig)
                position = 1 + sum(
                    1 for held in self._in_flight if held[1] == question.member_id
                )
                window *= position
            dispatched = DispatchedQuestion(
                session_id,
                question.member_id,
                question.assignment,
                question.text,
                question.fact_set,
                attempt=attempt,
                issued_at=now,
                deadline=now + window,
            )
            self._in_flight[key] = dispatched
        return dispatched

    # --------------------------------------------------------------- answers

    def submit(
        self, question: DispatchedQuestion, support: Optional[float]
    ) -> AnswerOutcome:
        """Record a member's answer to a dispatched question.

        ``support=None`` means the member explicitly passed: the node is
        abandoned for them (:class:`AnswerOutcome.PASSED`).  Answers for
        questions no longer in flight — reaped and reassigned while the
        member dawdled — are dropped as ``STALE``.  An out-of-range or
        non-finite support fails validation: it is discarded as
        ``REJECTED`` and the question requeued exactly as if it had timed
        out (backoff, then reassignment once attempts are exhausted), so
        a garbage-spewing member cannot poison the aggregator.
        """
        key = question.key
        rejected = support is not None and not (
            math.isfinite(support) and 0.0 <= support <= 1.0
        )
        with self._lock:
            live = self._in_flight.pop(key, None) is not None
            if live and not rejected:
                self._attempts.pop(key, None)
                self._backoff.pop(key, None)
            session = self._sessions.get(question.session_id)
        if not live or session is None:
            _obs_count("service.answers.stale")
            return AnswerOutcome.STALE
        if rejected:
            return self._reject(question, session)
        with _obs_span("service.submit"):
            if support is None:
                session.skip(question.member_id, question.assignment)
                _obs_count("service.answers.passed")
                outcome = AnswerOutcome.PASSED
            else:
                outcome = session.submit(
                    question.member_id, question.assignment, support
                )
                if outcome is AnswerOutcome.RECORDED:
                    _obs_count("service.answers.recorded")
                else:
                    _obs_count("service.answers.stale")
            self._maybe_complete(session)
        if outcome is not AnswerOutcome.STALE:
            self._breaker_feed(question.member_id, success=True)
        if (
            self.faults is not None
            and outcome is AnswerOutcome.RECORDED
            and support is not None
            and self.faults.decide("manager.submit", question.member_id)
            is FaultKind.DUPLICATE
        ):
            # idempotence probe: re-deliver the same answer; the queue
            # must drop the second application as STALE
            duplicate = session.submit(
                question.member_id, question.assignment, support
            )
            if duplicate is AnswerOutcome.STALE:
                _obs_count("service.answers.stale")
        return outcome

    def _reject(
        self, question: DispatchedQuestion, session: QuerySession
    ) -> AnswerOutcome:
        """Discard a malformed answer; timeout-equivalent retry semantics."""
        key = question.key
        with _obs_span("service.submit"):
            _obs_count("service.answers.rejected")
            if question.attempt >= self.config.max_attempts:
                session.skip(question.member_id, question.assignment)
                with self._lock:
                    self._attempts.pop(key, None)
                    self._backoff.pop(key, None)
                _obs_count("service.retries.exhausted")
                self._reassign(
                    session, question.assignment, exclude_member=question.member_id
                )
            else:
                session.expire(question.member_id, question.assignment)
                delay = self.config.backoff_base * (2 ** (question.attempt - 1))
                with self._lock:
                    self._backoff[key] = self.clock() + delay
                _obs_count("service.requeues")
            self._maybe_complete(session)
        self._breaker_feed(question.member_id, success=False)
        return AnswerOutcome.REJECTED

    def submit_prune(
        self, question: DispatchedQuestion, value: Term
    ) -> AnswerOutcome:
        """Record a user-guided pruning click on a dispatched question."""
        key = question.key
        with self._lock:
            live = self._in_flight.pop(key, None) is not None
            if live:
                self._attempts.pop(key, None)
                self._backoff.pop(key, None)
            session = self._sessions.get(question.session_id)
        if not live or session is None:
            _obs_count("service.answers.stale")
            return AnswerOutcome.STALE
        with _obs_span("service.submit"):
            outcome = session.prune(question.member_id, value, question.assignment)
            if outcome is AnswerOutcome.PRUNED:
                _obs_count("service.answers.pruned")
            else:
                _obs_count("service.answers.stale")
            self._maybe_complete(session)
        if outcome is AnswerOutcome.PRUNED:
            self._breaker_feed(question.member_id, success=True)
        return outcome

    # ----------------------------------------------------- deadlines / retry

    def reap_expired(self, now: Optional[float] = None) -> List[DispatchedQuestion]:
        """Time out overdue questions; requeue, back off, or reassign.

        A question past its deadline goes back onto its member's queue
        with an exponential backoff window (``backoff_base * 2**(attempt-1)``)
        — until the member has burned ``max_attempts`` attempts, at which
        point the node is abandoned for them and reassigned to another
        attached member.  Returns the reaped questions.
        """
        if now is None:
            now = self.clock()
        with self._lock:
            overdue = [q for q in self._in_flight.values() if q.deadline <= now]
            for question in overdue:
                del self._in_flight[question.key]
            # elapsed backoff windows no longer defer anything — drop them
            for key in [k for k, t in self._backoff.items() if t <= now]:
                del self._backoff[key]
        if not overdue:
            return []
        with _obs_span("service.reap"):
            touched = {}
            for question in overdue:
                _obs_count("service.timeouts")
                self._breaker_feed(question.member_id, success=False)
                with self._lock:
                    session = self._sessions.get(question.session_id)
                if session is None or not session.open:
                    continue
                touched[question.session_id] = session
                if question.attempt >= self.config.max_attempts:
                    session.skip(question.member_id, question.assignment)
                    with self._lock:
                        self._attempts.pop(question.key, None)
                    _obs_count("service.retries.exhausted")
                    self._reassign(
                        session,
                        question.assignment,
                        exclude_member=question.member_id,
                    )
                else:
                    session.expire(question.member_id, question.assignment)
                    delay = self.config.backoff_base * (2 ** (question.attempt - 1))
                    with self._lock:
                        self._backoff[question.key] = now + delay
                    _obs_count("service.requeues")
            for session in touched.values():
                self._maybe_complete(session)
        return overdue

    def _reassign(
        self, session: QuerySession, node: Assignment, exclude_member: str
    ) -> bool:
        """Queue an abandoned node for the least-loaded other member."""
        with self._lock:
            candidates = [m for m in self._members if m != exclude_member]
            if not candidates:
                return False
            load = {m: 0 for m in candidates}
            for key in self._in_flight:
                if key[1] in load:
                    load[key[1]] += 1
            target = min(candidates, key=lambda m: (load[m], m))
        if session.reassign(target, node):
            _obs_count("service.reassigned")
            return True
        return False

    # ------------------------------------------------------------ completion

    def _maybe_complete(self, session: QuerySession) -> bool:
        """Close the session if nothing is left to dispatch or wait for."""
        if not session.open:
            return False
        with self._lock:
            sid = session.session_id
            if any(key[0] == sid for key in self._in_flight):
                return False
            members = list(self._members)
        # no backoff check: a backed-off node sits on its member's stack, so
        # has_work() sees it; checking the backoff map instead would wedge
        # the session when the node dies (classified by others) meanwhile
        if session.has_work(members):
            return False
        if session.complete():
            _obs_count("service.sessions.completed")
            return True
        return False

    def all_done(self) -> bool:
        """Are all sessions settled?  Probes open sessions for completion."""
        for session in self.sessions():
            self._maybe_complete(session)
        return all(not s.open for s in self.sessions())

    def in_flight(self) -> List[DispatchedQuestion]:
        with self._lock:
            return list(self._in_flight.values())

    # -------------------------------------------------------------- breakers

    def _breaker_feed(self, member_id: str, *, success: bool) -> None:
        """Feed one dispatch outcome to the member's breaker, if any."""
        now = self.clock()
        with self._lock:
            breaker = self._breakers.get(member_id)
            if breaker is None:
                return
            if success:
                breaker.record_success(now)
            else:
                breaker.record_failure(now)

    def breaker_state(self, member_id: str) -> Optional[BreakerState]:
        """The member's breaker state; None when breakers are disabled."""
        with self._lock:
            breaker = self._breakers.get(member_id)
            return breaker.state if breaker is not None else None

    def breaker_opened_counts(self) -> Dict[str, int]:
        """How often each member's breaker has tripped (quarantine audit)."""
        with self._lock:
            return {
                member: breaker.opened_count
                for member, breaker in self._breakers.items()
            }

    # --------------------------------------------------------------- helpers

    def _drop_keys(
        self, predicate: Callable[[DispatchKey], bool]
    ) -> List[DispatchKey]:
        """Remove matching dispatch bookkeeping; caller holds the lock."""
        dropped = [key for key in self._in_flight if predicate(key)]
        for key in dropped:
            del self._in_flight[key]
        for mapping in (self._backoff, self._attempts):
            for key in [key for key in mapping if predicate(key)]:
                del mapping[key]
        return dropped
