"""Multi-session crowd-serving simulations (CLI, benchmarks, tests).

Builds a crowd of *identical* deterministic members — same personal
database, no noise — and serves many sessions of one experiment domain
concurrently.  Identical members make the concurrent run's answer set
order-independent: any ``sample_size`` answers for a node average to the
same value, so the MSP set of every session must equal the MSP set of a
serial :meth:`~repro.engine.engine.OassisEngine.execute` run of the same
query — even with injected timeouts, drops and departures.  That identity
is the service layer's correctness oracle (``verify=True``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..crowd.cache import CrowdCache
from ..crowd.journal import DurableCrowdCache
from ..crowd.member import CrowdMember
from ..datasets import culinary, health, running_example, travel
from ..datasets.base import DomainDataset
from ..engine.engine import OassisEngine
from ..faults.plan import FaultPlan
from .manager import SessionManager
from .runner import MemberScript, ServiceRunner


class _DemoDataset:
    """The Figure 3 fragment lattice as a fast simulation domain.

    The three paper domains mine thousands of questions per session —
    right for benchmarks, too slow for unit tests and smoke runs.  This
    shim serves the running example's fragment query (a few dozen
    assignments) through the same ``DomainDataset`` surface.
    """

    name = "demo"
    _template = running_example.FRAGMENT_QUERY.replace(
        "SUPPORT = 0.4", "SUPPORT = {threshold}"
    )

    def __init__(self) -> None:
        self.ontology = running_example.build_ontology()
        self._database = running_example.build_personal_databases()["u1"]

    def query(self, threshold: float = 0.4) -> str:
        return self._template.format(threshold=threshold)

    def build_crowd(self, size: int = 1, seed: int = 0, **_: object) -> List[CrowdMember]:
        return [
            CrowdMember(f"u{index}", self._database, self.ontology.vocabulary)
            for index in range(size)
        ]


DOMAINS = {
    "demo": _DemoDataset,
    "travel": travel.build_dataset,
    "culinary": culinary.build_dataset,
    "health": health.build_dataset,
}

#: session thresholds cycle through these (distinct workloads per session)
DEFAULT_THRESHOLDS = (0.2, 0.3, 0.4, 0.5)


def build_identical_crowd(
    dataset: DomainDataset, size: int, seed: int = 0, prefix: str = "m"
) -> List[CrowdMember]:
    """``size`` members sharing one sampled personal database.

    All behaviour knobs are zeroed (no noise, no specialization opt-in,
    no pruning clicks), so every member answers every question with the
    same deterministic support value.
    """
    prototype = dataset.build_crowd(
        size=1,
        seed=seed,
        noise=0.0,
        specialization_ratio=0.0,
        pruning_ratio=0.0,
        more_tip_ratio=0.0,
    )[0]
    vocabulary = dataset.ontology.vocabulary
    return [
        CrowdMember(f"{prefix}{index}", prototype.database, vocabulary)
        for index in range(size)
    ]


def run_simulation(
    *,
    domain: str = "demo",
    sessions: int = 8,
    workers: int = 4,
    crowd_size: int = 6,
    sample_size: int = 3,
    thresholds: Sequence[float] = DEFAULT_THRESHOLDS,
    question_timeout: float = 0.25,
    max_attempts: int = 3,
    backoff_base: float = 0.01,
    in_flight_limit: int = 4,
    batch_size: int = 2,
    drop_every: int = 0,
    departures: int = 0,
    depart_after: int = 6,
    max_runtime: float = 60.0,
    verify: bool = True,
    seed: int = 0,
    faults: Optional[FaultPlan] = None,
    durable_dir: Optional[Union[str, "os.PathLike[str]"]] = None,
    checkpoint_every: int = 0,
    breaker_window: int = 0,
    breaker_cooldown: float = 0.05,
    audit: bool = False,
    shards: int = 0,
    _keep_handles: bool = False,
) -> Dict:
    """Serve ``sessions`` concurrent sessions of ``domain``; report stats.

    ``drop_every`` makes every member ignore every n-th question (injected
    timeouts); ``departures`` makes that many members (the highest ids)
    leave after ``depart_after`` answers.  Keep
    ``crowd_size - departures >= sample_size`` or late nodes can starve
    below the aggregator's sample and stay unclassified (the documented
    graceful degradation — sessions still settle, with fewer MSPs).

    Robustness knobs (PR 5): ``faults`` injects a deterministic
    :class:`~repro.faults.plan.FaultPlan` through the manager and runner
    sites; ``durable_dir`` backs each session with a WAL journal
    (``<dir>/<session>.wal``); ``checkpoint_every`` additionally writes a
    session checkpoint (``<dir>/<session>.ckpt.json``) every N answers;
    ``breaker_window`` enables the per-member circuit breaker; ``audit``
    keeps a per-submission audit trail on the runner for invariant
    checks.

    With ``verify=True`` each session's MSP set is compared against a
    serial ``engine.execute`` of the same query over a fresh identical
    crowd; mismatches are listed in the report and flip ``verified``.

    ``shards > 0`` serves the campaign through that many worker
    *processes* instead of a thread pool (PR 7,
    :mod:`repro.service.shard`) — same report shape, same oracle.  The
    thread-mode fault knobs (``drop_every``, ``departures``, ``faults``,
    ``checkpoint_every``, ``breaker_window``, ``audit``) do not apply
    there; shard chaos is injected via
    :func:`~repro.service.shard.run_sharded_simulation` directly.
    """
    if shards > 0:
        incompatible = {
            "drop_every": (drop_every, 0),
            "departures": (departures, 0),
            "faults": (faults, None),
            "checkpoint_every": (checkpoint_every, 0),
            "breaker_window": (breaker_window, 0),
            "audit": (audit, False),
        }
        offending = [
            name for name, (value, default) in incompatible.items() if value != default
        ]
        if offending:
            raise ValueError(
                "sharded mode does not support thread-mode fault knobs: "
                + ", ".join(sorted(offending))
            )
        from .shard import run_sharded_simulation

        return run_sharded_simulation(
            domain=domain,
            shards=shards,
            sessions=sessions,
            crowd_size=crowd_size,
            sample_size=sample_size,
            thresholds=thresholds,
            max_runtime=max_runtime,
            verify=verify,
            seed=seed,
            durable_dir=durable_dir,
            _keep_handles=_keep_handles,
        )
    if domain not in DOMAINS:
        raise ValueError(f"unknown domain {domain!r}; pick from {sorted(DOMAINS)}")
    if sessions < 1:
        raise ValueError("sessions must be at least 1")
    if departures >= crowd_size:
        raise ValueError("at least one member must stay")
    if checkpoint_every > 0 and durable_dir is None:
        raise ValueError("checkpoint_every requires durable_dir")
    dataset = DOMAINS[domain]()
    engine = OassisEngine(dataset.ontology)
    manager = engine.session_manager(
        question_timeout=question_timeout,
        max_attempts=max_attempts,
        backoff_base=backoff_base,
        in_flight_limit=in_flight_limit,
        batch_size=batch_size,
        breaker_window=breaker_window,
        breaker_cooldown=breaker_cooldown,
        faults=faults,
    )
    queries = {}
    caches: List[CrowdCache] = []
    for index in range(sessions):
        threshold = thresholds[index % len(thresholds)]
        session_id = f"{domain}-{index}"
        queries[session_id] = dataset.query(threshold)
        cache: Optional[CrowdCache] = None
        if durable_dir is not None:
            cache = DurableCrowdCache(Path(durable_dir) / f"{session_id}.wal")
            caches.append(cache)
        session = manager.create_session(
            queries[session_id],
            session_id=session_id,
            sample_size=sample_size,
            cache=cache,
        )
        if checkpoint_every > 0 and durable_dir is not None:
            session.enable_checkpoints(
                Path(durable_dir) / f"{session_id}.ckpt.json",
                every=checkpoint_every,
            )
    members = build_identical_crowd(dataset, crowd_size, seed=seed)
    scripts = []
    for index, member in enumerate(members):
        departing = index >= crowd_size - departures
        scripts.append(
            MemberScript(
                member,
                drop_every=drop_every,
                depart_after=depart_after if departing else None,
            )
        )
    runner = ServiceRunner(
        manager,
        scripts,
        workers=workers,
        max_runtime=max_runtime,
        faults=faults,
        audit=audit,
    )
    try:
        report = runner.run()
    finally:
        for cache in caches:
            if isinstance(cache, DurableCrowdCache):
                cache.close()
    report["domain"] = domain
    report["crowd_size"] = crowd_size
    report["sample_size"] = sample_size
    if breaker_window > 0:
        report["breaker_opened"] = manager.breaker_opened_counts()
    if audit:
        report["audit_entries"] = len(runner.audit or [])
    if verify:
        report["verified"], report["mismatches"] = _verify_against_serial(
            engine, manager, queries, dataset, crowd_size, sample_size, seed
        )
    if _keep_handles:
        # for invariant auditors (repro.faults.chaos): live objects, so
        # callers must pop these before serializing the report
        report["_manager"] = manager
        report["_runner"] = runner
    return report


def _verify_against_serial(
    engine: OassisEngine,
    manager: SessionManager,
    queries: Dict[str, str],
    dataset: DomainDataset,
    crowd_size: int,
    sample_size: int,
    seed: int,
) -> "tuple[bool, List[Dict]]":
    """Compare each session's MSPs with a serial run of the same query."""
    mismatches: List[Dict] = []
    serial_cache: Dict[str, List[str]] = {}
    for session in manager.sessions():
        query = queries[session.session_id]
        if query not in serial_cache:
            baseline = build_identical_crowd(
                dataset, crowd_size, seed=seed, prefix="serial-m"
            )
            result = engine.execute(
                query, baseline, sample_size=sample_size
            )
            serial_cache[query] = sorted(repr(a) for a in result.all_msps)
        expected = serial_cache[query]
        got = sorted(repr(a) for a in session.msps())
        if got != expected:
            mismatches.append(
                {
                    "session": session.session_id,
                    "state": session.state.value,
                    "expected": expected,
                    "got": got,
                }
            )
    return (not mismatches), mismatches
