"""Legacy setup shim.

Kept so that ``pip install -e . --no-build-isolation --no-use-pep517`` works
on machines without the ``wheel`` package (PEP 517 editable installs need
``bdist_wheel``).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
