"""Section 6.4 (text): multiplicities and lazy assignment generation.

Two paper claims:
* the number of questions tracks the number of MSPs, not their value-set
  sizes (multiplicities 1–4);
* lazy generation materializes a small fraction (paper: <1%) of the nodes
  an eager generator would create for the same maximal multiplicity.
"""

import pytest

from conftest import run_once
from repro.experiments.multiplicities import (
    render_multiplicities,
    run_multiplicities_experiment,
)


@pytest.mark.benchmark(group="multiplicities")
def test_multiplicities(benchmark, show):
    rows = run_once(
        benchmark,
        lambda: run_multiplicities_experiment(
            msp_counts=(4, 8),
            max_set_sizes=(1, 2, 4),
            foods=16,
            drinks=8,
            threshold=0.5,
        ),
    )
    show(render_multiplicities(rows))

    # claim 1: questions depend on #MSPs, not on the multiplicity sizes —
    # within a fixed #MSPs, the spread across set sizes is bounded
    for count in (4, 8):
        questions = [r["questions"] for r in rows if r["msps"] == count]
        assert max(questions) <= 3.5 * max(1, min(questions)), (
            f"questions vary too much across multiplicity sizes: {questions}"
        )
    # and more MSPs cost more questions
    few = min(r["questions"] for r in rows if r["msps"] == 4)
    many = max(r["questions"] for r in rows if r["msps"] == 8)
    assert many >= few

    # claim 2: lazy generation creates a small fraction of the eager nodes
    # (the paper reports <1% on its much larger eager spaces; our synthetic
    # space is smaller, so the ratio is correspondingly less extreme)
    for row in rows:
        assert row["lazy_percent"] < 10.0, row
    assert min(r["lazy_percent"] for r in rows) < 2.0
