"""Shared helpers for the benchmark suite.

Every figure/table of the paper has a benchmark that (i) regenerates the
figure's data series, (ii) prints it in a paper-style text table, and
(iii) asserts the qualitative trend the paper reports.  Timing is recorded
via pytest-benchmark with a single round — these are experiment harnesses,
not micro-benchmarks (those live in test_micro.py).
"""

import pytest


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture()
def show():
    """Print through pytest's capture so tables appear in the bench log."""

    def _show(text: str) -> None:
        print()
        print(text)

    return _show
