#!/usr/bin/env python
"""Throughput report for the concurrent crowd-serving layer.

Runs the :func:`repro.service.run_simulation` harness — many sessions of
one domain, a shared crowd with injected drops and departures — at worker
counts 1, 4 and 8, and emits one JSON document (``BENCH_service.json``):

* per worker count: wall time, sessions settled per second, questions
  answered per second, timeout/requeue/reassignment counters;
* ``identity`` — for every configuration, whether each session's MSP set
  equals the serial ``engine.execute`` run of the same query (the service
  layer must be observationally invisible to the mining semantics).  Any
  divergence, timeout or unfinished session makes the process exit
  non-zero.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                 # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick         # CI-size
    PYTHONPATH=src python benchmarks/bench_service.py --validate BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    # allow `python benchmarks/bench_service.py` without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import atomic_write_json, derive_service, tracing
from repro.service import run_simulation

SCHEMA_VERSION = 1

WORKER_COUNTS = (1, 4, 8)


def run_config(workers: int, *, sessions: int, domain: str, seed: int) -> dict:
    """One simulation at the given concurrency; returns a report row."""
    with tracing() as tracer:
        started = time.perf_counter()
        report = run_simulation(
            domain=domain,
            sessions=sessions,
            workers=workers,
            crowd_size=6,
            sample_size=3,
            drop_every=5,
            departures=1,
            question_timeout=0.2,
            max_runtime=240.0,
            verify=True,
            seed=seed,
        )
        elapsed = time.perf_counter() - started
    states = [info["state"] for info in report["sessions"].values()]
    service = derive_service(tracer.report()["counters"]) or {}
    return {
        "workers": workers,
        "elapsed_seconds": round(elapsed, 4),
        "sessions": sessions,
        "sessions_completed": states.count("completed"),
        "sessions_per_second": round(report["sessions_per_second"], 4),
        "questions_answered": report["questions_answered"],
        "questions_per_second": round(report["questions_per_second"], 2),
        "timed_out": report["timed_out"],
        "msps_identical_to_serial": report["verified"],
        "mismatches": report["mismatches"],
        "service_counters": service,
    }


def build_report(quick: bool, seed: int) -> dict:
    sessions = 4 if quick else 8
    rows = [
        run_config(workers, sessions=sessions, domain="demo", seed=seed)
        for workers in WORKER_COUNTS
    ]
    serial_row = rows[0]
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "service",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "domain": "demo",
        "runs": rows,
        "identity": {
            "all_msps_identical": all(r["msps_identical_to_serial"] for r in rows),
            "all_settled": all(
                not r["timed_out"] and r["sessions_completed"] == r["sessions"]
                for r in rows
            ),
        },
        "speedup_1_to_4_workers": round(
            serial_row["elapsed_seconds"] / rows[1]["elapsed_seconds"], 3
        )
        if rows[1]["elapsed_seconds"] > 0
        else None,
    }


def validate(report: dict) -> list:
    """Schema and acceptance checks; returns a list of problems."""
    problems = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    runs = report.get("runs", [])
    if sorted(r.get("workers") for r in runs) != sorted(WORKER_COUNTS):
        problems.append(f"expected runs at workers {WORKER_COUNTS}")
    for row in runs:
        tag = f"workers={row.get('workers')}"
        for field in (
            "elapsed_seconds",
            "sessions_per_second",
            "questions_per_second",
            "questions_answered",
        ):
            if not isinstance(row.get(field), (int, float)):
                problems.append(f"{tag}: missing numeric {field}")
        if row.get("timed_out"):
            problems.append(f"{tag}: simulation timed out")
        if not row.get("msps_identical_to_serial"):
            problems.append(f"{tag}: MSPs diverged from serial execution")
        if row.get("sessions_completed") != row.get("sessions"):
            problems.append(f"{tag}: not every session completed")
    if not report.get("identity", {}).get("all_msps_identical"):
        problems.append("identity.all_msps_identical is false")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="4 sessions instead of 8 (CI-size)")
    parser.add_argument("--output", default="BENCH_service.json")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--validate", metavar="PATH",
                        help="re-check an existing report; no simulation runs")
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text(encoding="utf-8"))
        problems = validate(report)
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        print(f"{args.validate}: {'FAIL' if problems else 'ok'}")
        return 1 if problems else 0

    report = build_report(args.quick, args.seed)
    atomic_write_json(args.output, report)
    for row in report["runs"]:
        print(
            f"workers={row['workers']}: {row['elapsed_seconds']:.2f}s, "
            f"{row['questions_per_second']:.0f} questions/s, "
            f"identical={row['msps_identical_to_serial']}"
        )
    print(f"wrote {args.output}")
    problems = validate(report)
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
