#!/usr/bin/env python
"""Throughput report for the concurrent crowd-serving layer.

Schema v2 covers both serving backends:

* **thread mode** — :func:`repro.service.run_simulation` at worker
  counts 1, 4 and 8 (sessions of one domain, shared crowd, injected
  drops and departures), each row carrying the satellite timeout-churn
  regression fields: after the deadline-scaling fix every reaped
  question should be an *injected* drop, so
  ``excess_timeout_ratio = max(0, timeouts - dispatched // drop_every)
  / answered`` must stay ~0;
* **process-sharded mode** — :func:`repro.service.shard.
  run_sharded_simulation` across shard counts 1, 2 and 4 on a
  large-crowd campaign (100k members in full mode), with a per-shard-
  count efficiency table and a **core-aware scaling gate**: on a runner
  with >= 4 effective cores the 4-shard run must reach >= 2.5x the
  1-shard questions/s; on smaller runners the gate reports
  ``applicable: false`` with the reason instead of lying about scaling
  physics;
* **chaos** — one kill-one-shard -> WAL-restore -> identical-MSP run
  (:func:`repro.service.shard.run_shard_chaos_once`), gated on ``ok``.

Every configuration's MSP set must equal the serial ``engine.execute``
run of the same query (the serving layers must be observationally
invisible to the mining semantics).  Any divergence, timeout,
unfinished session, excess churn or failed chaos run makes the process
exit non-zero.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py                 # full
    PYTHONPATH=src python benchmarks/bench_service.py --quick         # <60s
    PYTHONPATH=src python benchmarks/bench_service.py --validate BENCH_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    # allow `python benchmarks/bench_service.py` without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.observability import atomic_write_json, derive_service, tracing
from repro.service import run_simulation

SCHEMA_VERSION = 2

WORKER_COUNTS = (1, 4, 8)
SHARD_COUNTS = (1, 2, 4)

#: every member ignores every n-th question in the thread-mode rows
DROP_EVERY = 5
#: ceiling on timeouts beyond the injected drops, per answered question
MAX_EXCESS_TIMEOUT_RATIO = 0.02
#: the 4-shard speedup floor, enforced only on >= 4 effective cores
MIN_SPEEDUP_AT_4_SHARDS = 2.5


def effective_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def run_config(workers: int, *, sessions: int, domain: str, seed: int) -> dict:
    """One thread-mode simulation; returns a report row."""
    with tracing() as tracer:
        started = time.perf_counter()
        report = run_simulation(
            domain=domain,
            sessions=sessions,
            workers=workers,
            crowd_size=6,
            sample_size=3,
            drop_every=DROP_EVERY,
            departures=1,
            question_timeout=0.2,
            max_runtime=240.0,
            verify=True,
            seed=seed,
        )
        elapsed = time.perf_counter() - started
    states = [info["state"] for info in report["sessions"].values()]
    service = derive_service(tracer.report()["counters"]) or {}
    questions = service.get("questions", {})
    answered = questions.get("answered", 0)
    injected = questions.get("dispatched", 0) // DROP_EVERY
    excess = max(0, questions.get("timeouts", 0) - injected)
    return {
        "workers": workers,
        "elapsed_seconds": round(elapsed, 4),
        "sessions": sessions,
        "sessions_completed": states.count("completed"),
        "sessions_per_second": round(report["sessions_per_second"], 4),
        "questions_answered": report["questions_answered"],
        "questions_per_second": round(report["questions_per_second"], 2),
        "timed_out": report["timed_out"],
        "msps_identical_to_serial": report["verified"],
        "mismatches": report["mismatches"],
        "service_counters": service,
        "timeout_churn": {
            "timeouts": questions.get("timeouts", 0),
            "injected_drops": injected,
            "excess_timeouts": excess,
            "excess_timeout_ratio": round(excess / answered, 4) if answered else 0.0,
        },
    }


def run_shard_config(
    shards: int,
    *,
    sessions: int,
    domain: str,
    crowd_size: int,
    sample_size: int,
    verify_crowd_size: int,
    seed: int,
) -> dict:
    """One process-sharded simulation; returns a report row.

    ``questions_per_second`` covers the serve phase only (fleet spawn
    and per-shard member construction excluded) — that is the quantity
    the scaling gate is about.
    """
    from repro.service.shard import run_sharded_simulation

    report = run_sharded_simulation(
        domain=domain,
        shards=shards,
        sessions=sessions,
        crowd_size=crowd_size,
        sample_size=sample_size,
        max_runtime=600.0,
        verify=True,
        seed=seed,
        verify_crowd_size=verify_crowd_size,
    )
    states = [info["state"] for info in report["sessions"].values()]
    return {
        "shards": shards,
        "crowd_size": crowd_size,
        "sample_size": sample_size,
        "partition_sizes": report["partition_sizes"],
        "quotas": report["quotas"],
        "elapsed_seconds": report["elapsed_seconds"],
        "sessions": sessions,
        "sessions_completed": states.count("completed"),
        "questions_answered": report["questions_answered"],
        "questions_per_second": round(report["questions_per_second"], 2),
        "timed_out": report["timed_out"],
        "msps_identical_to_serial": report["verified"],
        "mismatches": report["mismatches"],
        "shard_stats": report["shard_stats"],
    }


def build_report(quick: bool, seed: int) -> dict:
    from repro.service.shard import run_shard_chaos_once

    sessions = 4 if quick else 8
    rows = [
        run_config(workers, sessions=sessions, domain="demo", seed=seed)
        for workers in WORKER_COUNTS
    ]
    serial_row = rows[0]

    shard_sessions = 4 if quick else 8
    shard_crowd = 1_000 if quick else 100_000
    shard_sample = 10 if quick else 25
    shard_rows = [
        run_shard_config(
            shards,
            sessions=shard_sessions,
            domain="demo",
            crowd_size=shard_crowd,
            sample_size=shard_sample,
            verify_crowd_size=4 * shard_sample,
            seed=seed,
        )
        for shards in SHARD_COUNTS
    ]
    base_qps = shard_rows[0]["questions_per_second"]
    efficiency = {}
    for row in shard_rows:
        speedup = (
            round(row["questions_per_second"] / base_qps, 3) if base_qps else None
        )
        efficiency[str(row["shards"])] = {
            "questions_per_second": row["questions_per_second"],
            "speedup_vs_1_shard": speedup,
            "efficiency": round(speedup / row["shards"], 3)
            if speedup is not None
            else None,
        }

    cores = effective_cores()
    if quick:
        scaling_gate = {
            "applicable": False,
            "reason": "quick mode runs a reduced campaign; scaling not gated",
            "effective_cores": cores,
        }
    elif cores < 4:
        scaling_gate = {
            "applicable": False,
            "reason": f"only {cores} effective core(s); "
            f"{MIN_SPEEDUP_AT_4_SHARDS}x at 4 shards needs >= 4",
            "effective_cores": cores,
        }
    else:
        scaling_gate = {
            "applicable": True,
            "effective_cores": cores,
            "min_speedup_at_4_shards": MIN_SPEEDUP_AT_4_SHARDS,
            "speedup_at_4_shards": efficiency["4"]["speedup_vs_1_shard"],
        }

    chaos = run_shard_chaos_once(
        seed=seed,
        domain="demo",
        shards=3,
        sessions=4,
        crowd_size=6,
        sample_size=3,
        after_nodes=5,
    )

    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "service",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "domain": "demo",
        "runs": rows,
        "shard_runs": shard_rows,
        "shard_efficiency": efficiency,
        "scaling_gate": scaling_gate,
        "chaos": chaos,
        "identity": {
            "all_msps_identical": all(
                r["msps_identical_to_serial"] for r in rows + shard_rows
            ),
            "all_settled": all(
                not r["timed_out"] and r["sessions_completed"] == r["sessions"]
                for r in rows + shard_rows
            ),
        },
        "speedup_1_to_4_workers": round(
            serial_row["elapsed_seconds"] / rows[1]["elapsed_seconds"], 3
        )
        if rows[1]["elapsed_seconds"] > 0
        else None,
    }


def validate(report: dict) -> list:
    """Schema and acceptance checks; returns a list of problems."""
    problems = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    runs = report.get("runs", [])
    if sorted(r.get("workers") for r in runs) != sorted(WORKER_COUNTS):
        problems.append(f"expected runs at workers {WORKER_COUNTS}")
    for row in runs:
        tag = f"workers={row.get('workers')}"
        for field in (
            "elapsed_seconds",
            "sessions_per_second",
            "questions_per_second",
            "questions_answered",
        ):
            if not isinstance(row.get(field), (int, float)):
                problems.append(f"{tag}: missing numeric {field}")
        if row.get("timed_out"):
            problems.append(f"{tag}: simulation timed out")
        if not row.get("msps_identical_to_serial"):
            problems.append(f"{tag}: MSPs diverged from serial execution")
        if row.get("sessions_completed") != row.get("sessions"):
            problems.append(f"{tag}: not every session completed")
        churn = row.get("timeout_churn", {})
        ratio = churn.get("excess_timeout_ratio")
        if not isinstance(ratio, (int, float)):
            problems.append(f"{tag}: missing timeout_churn.excess_timeout_ratio")
        elif ratio > MAX_EXCESS_TIMEOUT_RATIO:
            problems.append(
                f"{tag}: excess timeout ratio {ratio} > {MAX_EXCESS_TIMEOUT_RATIO} "
                "(deadline scaling regression)"
            )
    shard_rows = report.get("shard_runs", [])
    if sorted(r.get("shards") for r in shard_rows) != sorted(SHARD_COUNTS):
        problems.append(f"expected shard runs at counts {SHARD_COUNTS}")
    for row in shard_rows:
        tag = f"shards={row.get('shards')}"
        for field in ("elapsed_seconds", "questions_per_second", "questions_answered"):
            if not isinstance(row.get(field), (int, float)):
                problems.append(f"{tag}: missing numeric {field}")
        if row.get("timed_out"):
            problems.append(f"{tag}: simulation timed out")
        if not row.get("msps_identical_to_serial"):
            problems.append(f"{tag}: MSPs diverged from serial execution")
        if row.get("sessions_completed") != row.get("sessions"):
            problems.append(f"{tag}: not every session completed")
    efficiency = report.get("shard_efficiency", {})
    for count in SHARD_COUNTS:
        if str(count) not in efficiency:
            problems.append(f"shard_efficiency missing entry for {count} shard(s)")
    gate = report.get("scaling_gate", {})
    if "applicable" not in gate:
        problems.append("scaling_gate.applicable missing")
    elif gate["applicable"]:
        speedup = gate.get("speedup_at_4_shards")
        floor = gate.get("min_speedup_at_4_shards", MIN_SPEEDUP_AT_4_SHARDS)
        if not isinstance(speedup, (int, float)) or speedup < floor:
            problems.append(
                f"scaling gate failed: speedup_at_4_shards={speedup} < {floor}"
            )
    elif not gate.get("reason"):
        problems.append("inapplicable scaling_gate must state a reason")
    chaos = report.get("chaos", {})
    if not chaos.get("ok"):
        problems.append(
            f"shard chaos run failed: {chaos.get('violations', ['missing'])}"
        )
    if not report.get("identity", {}).get("all_msps_identical"):
        problems.append("identity.all_msps_identical is false")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced campaign sizes (finishes in <60s)")
    parser.add_argument("--output", default="BENCH_service.json")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--validate", metavar="PATH",
                        help="re-check an existing report; no simulation runs")
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text(encoding="utf-8"))
        problems = validate(report)
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        print(f"{args.validate}: {'FAIL' if problems else 'ok'}")
        return 1 if problems else 0

    report = build_report(args.quick, args.seed)
    atomic_write_json(args.output, report)
    for row in report["runs"]:
        churn = row["timeout_churn"]
        print(
            f"workers={row['workers']}: {row['elapsed_seconds']:.2f}s, "
            f"{row['questions_per_second']:.0f} questions/s, "
            f"identical={row['msps_identical_to_serial']}, "
            f"excess_timeouts={churn['excess_timeouts']}"
        )
    for row in report["shard_runs"]:
        print(
            f"shards={row['shards']}: {row['elapsed_seconds']:.2f}s serve, "
            f"{row['questions_per_second']:.0f} questions/s, "
            f"crowd={row['crowd_size']}, "
            f"identical={row['msps_identical_to_serial']}"
        )
    gate = report["scaling_gate"]
    if gate["applicable"]:
        print(
            f"scaling gate: {gate['speedup_at_4_shards']}x at 4 shards "
            f"(floor {gate['min_speedup_at_4_shards']}x)"
        )
    else:
        print(f"scaling gate: not applicable — {gate['reason']}")
    print(f"chaos: {'ok' if report['chaos']['ok'] else 'FAILED'}")
    print(f"wrote {args.output}")
    problems = validate(report)
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
