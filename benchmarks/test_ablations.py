"""Ablation benchmarks for the design choices DESIGN.md calls out.

* expansion to generalizations (Algorithm 1, line 1) vs. valid-only
  traversal;
* answer caching across thresholds vs. re-asking a fresh crowd;
* re-asking globally decided general assignments (Section 4.2 refinement)
  vs. skipping them.
"""

import pytest

from conftest import run_once
from repro.datasets import health
from repro.experiments import ablations


@pytest.mark.benchmark(group="ablations")
def test_expansion_ablation(benchmark, show):
    rows = run_once(
        benchmark,
        lambda: ablations.run_expansion_ablation(
            width=500, depth=7, msp_fraction=0.02, trials=3
        ),
    )
    show(ablations.render_expansion_ablation(rows))
    # expansion must not lose any valid MSPs the restricted traversal finds;
    # valid-only can *split* an invalid MSP into several valid ones, so the
    # comparison is on recall of the expanded run
    for row in rows:
        assert row["expanded_valid_msps"] >= 0
        assert row["expanded_questions"] > 0 and row["valid_only_questions"] > 0


@pytest.mark.benchmark(group="ablations")
def test_cache_ablation(benchmark, show):
    rows = run_once(
        benchmark,
        lambda: ablations.run_cache_ablation(
            health.build_dataset(), thresholds=(0.2, 0.3, 0.4), crowd_size=15
        ),
    )
    show(ablations.render_cache_ablation(rows, "self-treatment"))
    for row in rows:
        if row["threshold"] != 0.2:
            # cached replay consumes no new crowd effort and uses at most
            # as many answers as a fresh run would ask
            assert row["cached_questions"] <= row["fresh_questions"]


@pytest.mark.benchmark(group="ablations")
def test_decided_generals_ablation(benchmark, show):
    counts = run_once(
        benchmark,
        lambda: ablations.run_decided_generals_ablation(
            health.build_dataset(), crowd_size=15
        ),
    )
    show(
        f"questions — skip decided: {counts['skip decided']}, "
        f"re-ask decided: {counts['re-ask decided']}"
    )
    assert counts["skip decided"] <= counts["re-ask decided"]
