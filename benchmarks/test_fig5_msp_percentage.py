"""Figure 5: vertical vs. horizontal vs. naive while varying the % of MSPs.

Synthetic DAG (width 500, depth 7), valid MSPs planted at 2% / 5% / 10% of
the nodes, 6 trials.  Prints the questions-to-X%-of-valid-MSPs series for
the three algorithms.

Paper trends asserted:
* the vertical algorithm discovers the first MSPs with far fewer questions
  than the horizontal one (paper: <35% of horizontal's questions at the
  20% milestone);
* the gap narrows as more MSPs are found;
* the naive algorithm is only competitive when MSPs are dense (10%).
"""

import pytest

from conftest import run_once
from repro.experiments import render_figure5, run_figure5

_RESULTS = {}


def _results():
    if "fig5" not in _RESULTS:
        _RESULTS["fig5"] = run_figure5(
            msp_fractions=(0.02, 0.05, 0.10),
            width=500,
            depth=7,
            trials=6,
            seed=0,
        )
    return _RESULTS["fig5"]


@pytest.mark.benchmark(group="figure5")
def test_fig5_all_densities(benchmark, show):
    results = run_once(benchmark, _results)
    show(render_figure5(results))
    for fraction, per_algorithm in results.items():
        vertical_20 = per_algorithm["vertical"][0.2]
        horizontal_20 = per_algorithm["horizontal"][0.2]
        assert vertical_20 is not None and horizontal_20 is not None
        # paper: fewer than 35% of horizontal's questions at 20% discovered;
        # we assert a conservative 60% to absorb generator differences
        assert vertical_20 <= horizontal_20 * 0.6, (
            f"at {fraction:.0%} MSPs: vertical {vertical_20} "
            f"vs horizontal {horizontal_20}"
        )


@pytest.mark.benchmark(group="figure5")
def test_fig5_gap_narrows_at_completion(benchmark, show):
    results = run_once(benchmark, _results)
    for fraction, per_algorithm in results.items():
        v20 = per_algorithm["vertical"][0.2]
        h20 = per_algorithm["horizontal"][0.2]
        v100 = per_algorithm["vertical"][1.0]
        h100 = per_algorithm["horizontal"][1.0]
        early_gap = v20 / h20
        late_gap = v100 / h100
        show(
            f"{fraction:.0%} MSPs: vertical/horizontal ratio "
            f"{early_gap:.2f} early -> {late_gap:.2f} complete"
        )
        assert late_gap >= early_gap * 0.9, "gap should narrow, not widen"


@pytest.mark.benchmark(group="figure5")
def test_fig5_naive_needs_dense_msps(benchmark, show):
    results = run_once(benchmark, _results)
    sparse_ratio = results[0.02]["naive"][0.4] / results[0.02]["vertical"][0.4]
    dense_ratio = results[0.10]["naive"][0.4] / results[0.10]["vertical"][0.4]
    show(
        f"naive/vertical at 40% discovered: {sparse_ratio:.2f} (2% MSPs) "
        f"vs {dense_ratio:.2f} (10% MSPs)"
    )
    assert dense_ratio < sparse_ratio
