"""Micro-benchmarks of the performance-critical substrate operations.

Not figures from the paper — standard OSS performance coverage: support
computation over personal DBs, SPARQL BGP evaluation, lazy successor
generation, and the vertical algorithm end-to-end on the synthetic DAG.
"""

import random

import pytest

from repro.assignments import QueryAssignmentSpace
from repro.datasets import running_example, travel
from repro.mining import vertical_mine
from repro.oassisql import parse_query
from repro.ontology import fact_set
from repro.sparql import SparqlEngine
from repro.synth import generate_dag, place_msps


@pytest.fixture(scope="module")
def travel_setting():
    dataset = travel.build_dataset()
    members = dataset.build_crowd(size=1, seed=0, transactions=40)
    return dataset, members[0]


@pytest.mark.benchmark(group="micro")
def test_support_computation(benchmark, travel_setting):
    dataset, member = travel_setting
    target = fact_set(("Sport", "doAt", "Gordon Beach"))

    def compute():
        member.database._hits_cache.clear()
        return member.database.support(target, dataset.ontology.vocabulary)

    value = benchmark(compute)
    assert 0.0 <= value <= 1.0


@pytest.mark.benchmark(group="micro")
def test_sparql_bgp_evaluation(benchmark):
    ontology = running_example.build_ontology()
    engine = SparqlEngine(ontology)
    query = parse_query(running_example.SAMPLE_QUERY)
    solutions = benchmark(lambda: list(engine.solutions(query.where)))
    assert len(solutions) > 0


@pytest.mark.benchmark(group="micro")
def test_lazy_successor_generation(benchmark):
    ontology = running_example.build_ontology()
    query = parse_query(running_example.SAMPLE_QUERY)

    def generate():
        space = QueryAssignmentSpace(
            ontology, query, more_pool=running_example.more_pool(),
            max_values_per_var=2, max_more_facts=1,
        )
        (root,) = space.roots()
        frontier = [root]
        count = 0
        for _ in range(50):
            if not frontier:
                break
            node = frontier.pop()
            successors = space.successors(node)
            count += len(successors)
            frontier.extend(successors[:2])
        return count

    count = benchmark(generate)
    assert count > 0


@pytest.mark.benchmark(group="micro")
def test_vertical_on_synthetic_dag(benchmark):
    dag = generate_dag(width=500, depth=7, seed=0)
    planted = place_msps(dag, 10, valid_only=True, seed=0)

    def mine():
        return vertical_mine(dag, planted.support, 0.5, rng=random.Random(0))

    result = benchmark(mine)
    assert len(result.msps) == 10


@pytest.mark.benchmark(group="micro")
def test_vertical_traced_counter_consistency(benchmark):
    """Tracing the same run: the ``crowd.questions`` counter must agree
    with both ``MiningResult.questions`` and the mining trace's final
    ``TracePoint.questions`` — three independent accountings of one
    number (see docs/OBSERVABILITY.md)."""
    from repro.observability import tracing

    dag = generate_dag(width=500, depth=7, seed=0)
    planted = place_msps(dag, 10, valid_only=True, seed=0)

    def mine():
        with tracing() as tracer:
            result = vertical_mine(
                dag, planted.support, 0.5, rng=random.Random(0)
            )
        return tracer, result

    tracer, result = benchmark(mine)
    assert tracer.value("crowd.questions") == result.questions
    assert result.trace.points[-1].questions == result.questions
    assert tracer.find_span("mine.vertical") is not None


@pytest.mark.benchmark(group="micro")
def test_ontology_pattern_matching(benchmark):
    dataset = travel.build_dataset()
    ontology = dataset.ontology
    from repro.vocabulary import Relation

    def scan():
        return sum(1 for _ in ontology.match(relation=Relation("nearBy")))

    count = benchmark(scan)
    assert count > 0
