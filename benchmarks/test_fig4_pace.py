"""Figures 4d–4e: pace of data collection (questions vs. % discovered).

Prints, for the travel and self-treatment domains at threshold 0.2, the
number of questions needed to reach 20/40/60/80/100% of (i) classified
valid assignments, (ii) valid MSPs, (iii) all MSPs — the three series of
the paper's line charts.

Paper trends asserted:
* the series are monotone (more discovery costs more questions);
* the tail of the classification work is not dramatically cheaper than the
  head (the paper's "isolated unclassified parts of the DAG" effect);
* the smaller self-treatment query needs fewer questions overall.
"""

import pytest

from _fig4_shared import domain_run
from conftest import run_once


def _assert_pace_trends(run):
    series = run.pace_series()
    for label, points in series.items():
        values = [q for _, q in points if q is not None]
        assert values == sorted(values), f"{label} series must be monotone"
    # the paper: "towards the end of the execution, classifying each
    # remaining assignment requires more crowd answers".  The effect shows
    # in the MSP discovery series (the classified-assignment series can
    # end with a cheap inference cascade when the final insignificant
    # answers close out whole subtrees at once).
    msps = dict(series["all MSPs"])
    if msps.get(0.2) and msps.get(1.0):
        first_fifth = msps[0.2]
        last_fifth = msps[1.0] - msps[0.8]
        assert last_fifth >= 0
        assert last_fifth * 2 >= first_fifth or msps[1.0] < 200


@pytest.mark.benchmark(group="figure4-pace")
def test_fig4d_travel(benchmark, show):
    run = run_once(benchmark, lambda: domain_run("travel"))
    show(run.pace_table())
    _assert_pace_trends(run)


@pytest.mark.benchmark(group="figure4-pace")
def test_fig4e_self_treatment(benchmark, show):
    run = run_once(benchmark, lambda: domain_run("self-treatment"))
    show(run.pace_table())
    _assert_pace_trends(run)


@pytest.mark.benchmark(group="figure4-pace")
def test_self_treatment_cheaper_than_travel(benchmark, show):
    def totals():
        return (
            domain_run("travel").rows[0].questions,
            domain_run("self-treatment").rows[0].questions,
        )

    travel_questions, health_questions = run_once(benchmark, totals)
    show(
        f"total questions at 0.2 — travel: {travel_questions}, "
        f"self-treatment: {health_questions}"
    )
    assert health_questions < travel_questions
