"""Figures 4a–4c: crowd statistics per domain and threshold.

For each domain, runs the multi-user algorithm at threshold 0.2 with a
simulated crowd, replays from the cache at 0.3/0.4/0.5, and prints the
#MSPs / #valid / #questions / baseline% rows of the paper's bar charts.

Paper trends asserted:
* #MSPs and #questions decrease as the threshold rises;
* cached replays at higher thresholds beat the 5-questions-per-valid-
  assignment baseline (the paper reports ≤24% for travel, <5% for the
  class-seeking domains; our simulated crowd is 10× smaller than the
  paper's 248 members, so the base-threshold run carries proportionally
  more of the boundary per member — see EXPERIMENTS.md);
* the travel (instance-seeking) query has invalid MSPs, the class-seeking
  domains do not;
* #questions correlates with #MSPs across domains.
"""

import pytest

from _fig4_shared import domain_run
from conftest import run_once


def _assert_common_trends(run, strict_msps=True):
    first, last = run.rows[0], run.rows[-1]
    if strict_msps:
        assert last.msps <= first.msps, "MSPs should not grow with the threshold"
    else:
        # the paper's own footnote 8 (Figure 4b): raising the threshold can
        # turn one MSP insignificant and promote all its predecessors, so
        # the count need not be monotone; the question count still is
        assert last.msps <= max(r.msps for r in run.rows)
    assert last.questions <= first.questions, "replay must not use more answers"
    # replayed thresholds beat the baseline comfortably
    for row in run.rows[1:]:
        assert row.baseline_percent < 100.0, row.threshold


@pytest.mark.benchmark(group="figure4-crowd-stats")
def test_fig4a_travel(benchmark, show):
    run = run_once(benchmark, lambda: domain_run("travel"))
    show(run.crowd_stats_table())
    _assert_common_trends(run)
    # the instance-seeking travel query has MSPs that are not valid
    low = run.rows[0]
    assert low.valid_msps < low.msps


@pytest.mark.benchmark(group="figure4-crowd-stats")
def test_fig4b_culinary(benchmark, show):
    run = run_once(benchmark, lambda: domain_run("culinary"))
    show(run.crowd_stats_table())
    _assert_common_trends(run, strict_msps=False)
    # class-seeking query: every MSP is valid (Section 6.3)
    for row in run.rows:
        assert row.valid_msps == row.msps


@pytest.mark.benchmark(group="figure4-crowd-stats")
def test_fig4c_self_treatment(benchmark, show):
    run = run_once(benchmark, lambda: domain_run("self-treatment"))
    show(run.crowd_stats_table())
    _assert_common_trends(run)
    for row in run.rows:
        assert row.valid_msps == row.msps


@pytest.mark.benchmark(group="figure4-crowd-stats")
def test_totals_questions_track_msps(benchmark, show):
    """Section 6.3: #questions correlates with #MSPs across domains."""

    def collect():
        # compare at threshold 0.3: at the 0.2 base the culinary query's
        # multiplicities merge several leaf patterns into one multi-dish
        # MSP, deflating the raw count (the flip side of footnote 8)
        return {
            name: domain_run(name).rows[1]
            for name in ("travel", "culinary", "self-treatment")
        }

    rows = run_once(benchmark, collect)
    ordered = sorted(rows.items(), key=lambda kv: kv[1].msps)
    show(
        "questions-vs-MSPs ordering: "
        + " <= ".join(
            f"{name}({row.msps} MSPs, {row.questions} q)" for name, row in ordered
        )
    )
    questions_in_msp_order = [row.questions for _, row in ordered]
    assert questions_in_msp_order[0] == min(questions_in_msp_order)
    assert questions_in_msp_order[-1] == max(questions_in_msp_order)


@pytest.mark.benchmark(group="figure4-crowd-stats")
def test_answer_type_breakdown(benchmark, show):
    """Section 6.3: concrete questions dominate; the special types appear."""
    stats = run_once(benchmark, lambda: domain_run("travel").answer_stats)
    show(f"answer types (travel): {stats}")
    total = stats["concrete"] + stats["specialization"] + stats["pruning_clicks"]
    assert stats["concrete"] / total > 0.5
    assert stats["specialization"] > 0
    assert stats["pruning_clicks"] >= 0
