"""Section 6.4 (text): MSP placement distribution sweep.

The paper tried uniform / nearby / far MSP placements, over the whole DAG
or the valid subset, and saw no trend change.  We assert the
vertical-beats-horizontal ordering at the 50% milestone for all six
combinations.
"""

import pytest

from conftest import run_once
from repro.experiments.distribution import (
    render_distribution_sweep,
    run_distribution_sweep,
)


@pytest.mark.benchmark(group="msp-distribution")
def test_distribution_sweep(benchmark, show):
    results = run_once(
        benchmark,
        lambda: run_distribution_sweep(
            width=500, depth=7, msp_fraction=0.02, trials=3, milestone=0.5
        ),
    )
    show(render_distribution_sweep(results))
    for (policy, valid_only), per_algorithm in results.items():
        vertical = per_algorithm["vertical"]
        horizontal = per_algorithm["horizontal"]
        assert vertical is not None and horizontal is not None
        assert vertical <= horizontal * 1.05, (
            f"trend flipped for placement={policy}, valid_only={valid_only}"
        )
