#!/usr/bin/env python
"""Whole-stack chaos report: kill anything, measure recovery (PR 10).

Sweeps :func:`repro.faults.total_chaos.run_total_chaos_campaign` over
seeds × domains and emits one JSON document (``BENCH_chaos.json``) with
three gates:

* **identity** — every campaign, whatever was killed mid-flight
  (gateway process, shard worker, the coordinator itself, client
  connections), must finish with MSP sets identical to an
  uninterrupted serial ``engine.execute``;
* **exactly-once** — zero re-asks of acknowledged answers and zero
  double-charged session-cache entries across every scenario (the
  idempotency-key + WAL-resume guarantee, audited end to end);
* **MTTR** — each killed component must have recorded a detect→serving
  MTTR sample, and the supervisor's shard-restart p95 must stay under
  ``MAX_SUPERVISOR_RESTART_P95_SECONDS``.

Usage::

    PYTHONPATH=src python benchmarks/bench_chaos.py                 # full
    PYTHONPATH=src python benchmarks/bench_chaos.py --quick         # CI-size
    PYTHONPATH=src python benchmarks/bench_chaos.py --validate BENCH_chaos.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

if __package__ in (None, ""):
    # allow `python benchmarks/bench_chaos.py` without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.faults.total_chaos import COMPONENTS, run_total_chaos_campaign
from repro.observability import atomic_write_json

SCHEMA_VERSION = 1

#: the supervisor must bring a killed shard back within this p95 budget
MAX_SUPERVISOR_RESTART_P95_SECONDS = 1.0

#: (seeds, domains) per mode
FULL_SWEEP = ((0, 1, 2), ("demo", "travel"))
QUICK_SWEEP = ((0,), ("demo",))

#: components whose kill must produce an MTTR sample (client faults
#: never take a component down, so no MTTR is expected there)
KILLED_COMPONENTS = ("gateway", "shard", "coordinator")


def build_report(quick: bool) -> dict:
    seeds, domains = QUICK_SWEEP if quick else FULL_SWEEP
    campaign = run_total_chaos_campaign(seeds=seeds, domains=domains)
    runs = campaign["runs"]
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "chaos",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "seeds": campaign["seeds"],
        "domains": campaign["domains"],
        "runs": runs,
        "all_ok": campaign["ok"],
        "violations": [v for run in runs for v in run["violations"]],
        "mttr": campaign["mttr"],
        "supervisor_restart_p95_seconds": campaign[
            "supervisor_restart_p95_seconds"
        ],
        "supervisor_restart_p95_budget_seconds": (
            MAX_SUPERVISOR_RESTART_P95_SECONDS
        ),
        "total_reasks": sum(
            run["scenarios"][name].get("reasks", 0)
            for run in runs
            for name in ("gateway", "client")
        ),
        "total_double_charges": sum(
            run["scenarios"][name].get("double_charges", 0)
            for run in runs
            for name in ("gateway", "client")
        ),
    }


def validate(report: dict) -> list:
    """Schema and acceptance checks; returns a list of problems."""
    problems = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    runs = report.get("runs", [])
    if not runs:
        problems.append("no chaos runs in the report")
    if not report.get("quick"):
        domains = {run.get("domain") for run in runs}
        if not {"demo", "travel"} <= domains:
            problems.append(
                f"campaigns must cover demo and travel, got {sorted(domains)}"
            )
        if len({run.get("seed") for run in runs}) < 3:
            problems.append("full report must cover at least 3 seeds")
    for run in runs:
        tag = f"{run.get('domain')}/seed{run.get('seed')}"
        if not run.get("ok"):
            problems.append(f"{tag}: {run.get('violations')}")
        scenarios = run.get("scenarios", {})
        if set(scenarios) != set(COMPONENTS):
            problems.append(
                f"{tag}: scenarios {sorted(scenarios)} != {sorted(COMPONENTS)}"
            )
    if not report.get("all_ok"):
        problems.append("all_ok is false")
    if report.get("total_reasks", 0) != 0:
        problems.append(f"{report['total_reasks']} acknowledged answers re-asked")
    if report.get("total_double_charges", 0) != 0:
        problems.append(
            f"{report['total_double_charges']} answers double-charged"
        )
    mttr = report.get("mttr", {})
    for component in KILLED_COMPONENTS:
        stats = mttr.get(component)
        if not isinstance(stats, dict) or stats.get("incidents", 0) < 1:
            problems.append(f"no MTTR samples recorded for {component}")
    budget = report.get(
        "supervisor_restart_p95_budget_seconds",
        MAX_SUPERVISOR_RESTART_P95_SECONDS,
    )
    p95 = report.get("supervisor_restart_p95_seconds")
    if not isinstance(p95, (int, float)) or p95 > budget:
        problems.append(
            f"supervisor restart p95 {p95}s exceeds the {budget}s budget"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="one seed, one domain (CI-size)")
    parser.add_argument("--output", default="BENCH_chaos.json")
    parser.add_argument("--validate", metavar="PATH",
                        help="re-check an existing report; no runs")
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text(encoding="utf-8"))
        problems = validate(report)
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        print(f"{args.validate}: {'FAIL' if problems else 'ok'}")
        return 1 if problems else 0

    report = build_report(args.quick)
    atomic_write_json(args.output, report)
    for run in report["runs"]:
        mttrs = " ".join(
            f"{name}={run['mttr_seconds'][name]}s"
            for name in KILLED_COMPONENTS
        )
        print(
            f"{run['domain']:7} seed {run['seed']}: "
            f"ok={run['ok']}  mttr {mttrs}"
        )
    print(
        f"supervisor restart p95 {report['supervisor_restart_p95_seconds']}s "
        f"(budget {report['supervisor_restart_p95_budget_seconds']}s); "
        f"reasks={report['total_reasks']} "
        f"double_charges={report['total_double_charges']}"
    )
    print(f"wrote {args.output}")
    problems = validate(report)
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
