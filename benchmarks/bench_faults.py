#!/usr/bin/env python
"""Overhead + recovery report for the fault/durability layer (PR 5).

Two sections, emitted as one JSON document (``BENCH_faults.json``):

* ``overhead`` — a single-threaded dispatch/submit pump over many demo
  sessions, timed with the fault machinery **absent** (``baseline``: no
  ``FaultPlan``, plain in-memory :class:`~repro.crowd.cache.CrowdCache`)
  vs. **constructed but disabled** (``disabled``: an empty ``FaultPlan``
  threaded through every injection site, breaker off, no WAL).  The
  disabled path must cost ≤5% over baseline — the robustness layer has
  to be free when it is off.  Info rows time the WAL journal
  (``wal``) and the WAL + checkpoints path (``durable``) for context;
  they are reported, not gated.
* ``recovery`` — the crash-kill-resume identity check: a WAL-backed,
  checkpointed session is abandoned mid-run (no close, no flush beyond
  the journal's own per-append flush — a simulated SIGKILL), restored
  via :func:`repro.service.restore_session` into a *fresh* manager, and
  driven to completion.  Its MSP set must equal the uninterrupted serial
  ``engine.execute`` run of the same query, for every seed tried.

Any gate failure makes the process exit non-zero.

Usage::

    PYTHONPATH=src python benchmarks/bench_faults.py                # full
    PYTHONPATH=src python benchmarks/bench_faults.py --quick        # CI-size
    PYTHONPATH=src python benchmarks/bench_faults.py --validate BENCH_faults.json
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import sys
import tempfile
import time
from pathlib import Path

if __package__ in (None, ""):
    # allow `python benchmarks/bench_faults.py` without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.crowd.journal import DurableCrowdCache
from repro.crowd.questions import ConcreteQuestion
from repro.faults import FaultPlan
from repro.observability import atomic_write_json
from repro.service import restore_session
from repro.service.simulation import DEFAULT_THRESHOLDS, DOMAINS, build_identical_crowd

SCHEMA_VERSION = 1

#: the disabled fault/durability machinery may cost at most this much
MAX_DISABLED_OVERHEAD = 0.05
#: ...unless the absolute delta is below timer noise at this scale
NOISE_FLOOR_SECONDS = 0.010


def pump(manager, members, *, stop_after=None, batch=4):
    """Single-threaded dispatch/submit loop; returns answers submitted."""
    by_id = {m.member_id: m for m in members}
    for member in members:
        manager.attach_member(member.member_id)
    answered = 0
    while not manager.all_done():
        progress = False
        for member_id in manager.members():
            for question in manager.next_batch(member_id, k=batch):
                progress = True
                support = (
                    by_id[member_id]
                    .answer_concrete(
                        ConcreteQuestion(question.assignment, question.fact_set)
                    )
                    .support
                )
                manager.submit(question, support)
                answered += 1
                if stop_after is not None and answered >= stop_after:
                    return answered
        if not progress:
            raise RuntimeError("serial pump stalled with open sessions")
    return answered


def timed_run(engine, dataset, *, sessions, sample_size, crowd_size, seed,
              faults=None, durable_dir=None, checkpoint_every=0):
    """One pumped multi-session run; returns (elapsed, answers)."""
    manager = engine.session_manager(
        question_timeout=60.0, backoff_base=0.05, faults=faults
    )
    caches = []
    for index in range(sessions):
        threshold = DEFAULT_THRESHOLDS[index % len(DEFAULT_THRESHOLDS)]
        session_id = f"bench-{index}"
        cache = None
        if durable_dir is not None:
            cache = DurableCrowdCache(Path(durable_dir) / f"{session_id}.wal")
            caches.append(cache)
        session = manager.create_session(
            dataset.query(threshold),
            session_id=session_id,
            sample_size=sample_size,
            cache=cache,
        )
        if checkpoint_every > 0 and durable_dir is not None:
            session.enable_checkpoints(
                Path(durable_dir) / f"{session_id}.ckpt.json",
                every=checkpoint_every,
            )
    members = build_identical_crowd(dataset, crowd_size, seed=seed)
    started = time.perf_counter()
    answered = pump(manager, members)
    elapsed = time.perf_counter() - started
    for cache in caches:
        cache.close()
    return elapsed, answered


def bench_overhead(engine, dataset, *, sessions, trials, seed):
    """Best-of-``trials`` timings for each machinery configuration."""
    configs = {
        "baseline": {},
        "disabled": {"faults": FaultPlan(seed=seed)},
    }
    rows = {}
    scratch = Path(tempfile.mkdtemp(prefix="bench-faults-"))
    try:
        for name, extra in configs.items():
            rows[name] = _best_of(
                engine, dataset, trials, sessions, seed, **extra
            )
        rows["wal"] = _best_of(
            engine, dataset, trials, sessions, seed,
            durable_dir=scratch / "wal",
        )
        rows["durable"] = _best_of(
            engine, dataset, trials, sessions, seed,
            durable_dir=scratch / "durable", checkpoint_every=10,
        )
    finally:
        shutil.rmtree(scratch, ignore_errors=True)
    baseline = rows["baseline"]["best_seconds"]
    disabled = rows["disabled"]["best_seconds"]
    overhead = (disabled - baseline) / baseline if baseline > 0 else 0.0
    return {
        "sessions": sessions,
        "trials": trials,
        "rows": rows,
        "disabled_overhead_ratio": round(overhead, 4),
        "disabled_delta_seconds": round(disabled - baseline, 4),
        "max_overhead_ratio": MAX_DISABLED_OVERHEAD,
        "noise_floor_seconds": NOISE_FLOOR_SECONDS,
        "within_budget": (
            overhead <= MAX_DISABLED_OVERHEAD
            or (disabled - baseline) <= NOISE_FLOOR_SECONDS
        ),
    }


def _best_of(engine, dataset, trials, sessions, seed, **extra):
    times, answers = [], 0
    for trial in range(trials):
        scratch = None
        if "durable_dir" in extra:
            # fresh journal directory per trial: replay must not pollute
            base = Path(extra["durable_dir"])
            scratch = base / f"trial-{trial}"
            extra = dict(extra, durable_dir=scratch)
        elapsed, answers = timed_run(
            engine, dataset, sessions=sessions, sample_size=3,
            crowd_size=4, seed=seed, **extra
        )
        times.append(elapsed)
    return {
        "best_seconds": round(min(times), 4),
        "mean_seconds": round(sum(times) / len(times), 4),
        "answers": answers,
    }


def bench_recovery(engine, dataset, *, seeds, kill_after, seed):
    """Kill-and-resume identity: resumed MSPs == uninterrupted MSPs."""
    query = dataset.query(0.4)
    baseline_crowd = build_identical_crowd(dataset, 4, seed=seed, prefix="b")
    expected = sorted(
        repr(a)
        for a in engine.execute(query, baseline_crowd, sample_size=3).all_msps
    )
    runs = []
    for run_seed in seeds:
        scratch = Path(tempfile.mkdtemp(prefix="bench-recovery-"))
        try:
            wal = scratch / "session.wal"
            ckpt = scratch / "session.ckpt.json"
            manager = engine.session_manager(
                question_timeout=60.0, backoff_base=0.05
            )
            cache = DurableCrowdCache(wal)
            session = manager.create_session(
                query, session_id="recover-me", sample_size=3, cache=cache
            )
            session.enable_checkpoints(ckpt, every=5)
            members = build_identical_crowd(dataset, 4, seed=run_seed)
            killed_at = pump(manager, members, stop_after=kill_after)
            # simulated SIGKILL: the manager, session and cache handle are
            # abandoned; only the flushed journal + checkpoint survive
            fresh = engine.session_manager(
                question_timeout=60.0, backoff_base=0.05
            )
            started = time.perf_counter()
            restored = restore_session(
                fresh, checkpoint_path=ckpt, journal_path=wal
            )
            restore_seconds = time.perf_counter() - started
            pump(fresh, build_identical_crowd(dataset, 4, seed=run_seed))
            got = sorted(repr(a) for a in restored.msps())
            restored.cache.close()
            runs.append(
                {
                    "seed": run_seed,
                    "killed_after_answers": killed_at,
                    "restore_seconds": round(restore_seconds, 4),
                    "identical": got == expected,
                    "msp_count": len(got),
                }
            )
        finally:
            shutil.rmtree(scratch, ignore_errors=True)
    return {
        "query_threshold": 0.4,
        "expected_msps": len(expected),
        "kill_after": kill_after,
        "runs": runs,
        "all_identical": all(r["identical"] for r in runs),
    }


def build_report(quick: bool, seed: int) -> dict:
    dataset = DOMAINS["demo"]()
    from repro.engine.engine import OassisEngine

    engine = OassisEngine(dataset.ontology)
    overhead = bench_overhead(
        engine,
        dataset,
        sessions=4 if quick else 12,
        trials=3 if quick else 5,
        seed=seed,
    )
    recovery = bench_recovery(
        engine,
        dataset,
        seeds=(0, 1) if quick else (0, 1, 2),
        kill_after=10,
        seed=seed,
    )
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "faults",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "domain": "demo",
        "seed": seed,
        "overhead": overhead,
        "recovery": recovery,
    }


def validate(report: dict) -> list:
    """Schema and acceptance checks; returns a list of problems."""
    problems = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    overhead = report.get("overhead", {})
    rows = overhead.get("rows", {})
    for name in ("baseline", "disabled", "wal", "durable"):
        row = rows.get(name, {})
        if not isinstance(row.get("best_seconds"), (int, float)):
            problems.append(f"overhead.rows.{name}: missing best_seconds")
    if not overhead.get("within_budget"):
        problems.append(
            "disabled-path overhead "
            f"{overhead.get('disabled_overhead_ratio')} exceeds "
            f"{overhead.get('max_overhead_ratio')} (delta "
            f"{overhead.get('disabled_delta_seconds')}s above the "
            f"{overhead.get('noise_floor_seconds')}s noise floor)"
        )
    recovery = report.get("recovery", {})
    runs = recovery.get("runs", [])
    if len(runs) < 2:
        problems.append("recovery: fewer than 2 kill-and-resume runs")
    for run in runs:
        if not run.get("identical"):
            problems.append(
                f"recovery seed {run.get('seed')}: resumed MSPs diverged "
                "from the uninterrupted run"
            )
    if not recovery.get("all_identical"):
        problems.append("recovery.all_identical is false")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer sessions/trials/seeds (CI-size)")
    parser.add_argument("--output", default="BENCH_faults.json")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--validate", metavar="PATH",
                        help="re-check an existing report; no runs")
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text(encoding="utf-8"))
        problems = validate(report)
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        print(f"{args.validate}: {'FAIL' if problems else 'ok'}")
        return 1 if problems else 0

    report = build_report(args.quick, args.seed)
    atomic_write_json(args.output, report)
    overhead = report["overhead"]
    for name, row in overhead["rows"].items():
        print(f"{name:10} {row['best_seconds']:.4f}s "
              f"({row['answers']} answers)")
    print(
        f"disabled-path overhead: {overhead['disabled_overhead_ratio']:+.1%} "
        f"(budget {overhead['max_overhead_ratio']:.0%}, "
        f"within={overhead['within_budget']})"
    )
    for run in report["recovery"]["runs"]:
        print(
            f"recovery seed {run['seed']}: killed after "
            f"{run['killed_after_answers']} answers, "
            f"identical={run['identical']}"
        )
    print(f"wrote {args.output}")
    problems = validate(report)
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
