#!/usr/bin/env python
"""Load-test report for the network-facing crowd gateway (PR 8).

Replays simulated-member campaigns over **loopback HTTP** — real
sockets, real request framing, the same :mod:`repro.gateway` server CI
smokes — and emits one JSON document (``BENCH_gateway.json``) with two
gates:

* **identity** — for every (domain, seed) campaign, the MSP sets the
  gateway streams from ``/result`` must be *identical* to a serial
  ``engine.execute`` of the same queries over a fresh identical crowd.
  The wire (auth, long-polling, batching, retries, backpressure) must
  not change what gets mined — the paper's algorithms do not know the
  transport exists.
* **budget** — sustained throughput of the slowest campaign must clear
  ``MIN_QUESTIONS_PER_SECOND``, and the per-endpoint latency histograms
  (``gateway.latency.*``, recorded by the server itself) must keep
  ``POST /answer`` p95 under ``MAX_ANSWER_P95_SECONDS``.  ``GET /next``
  is reported but not latency-gated: a long-poll is *supposed* to hold
  the line open.

Every campaign's per-endpoint p50/p95/p99 land in the report, so the
numbers PERFORMANCE.md talks about are regenerable from one command.

Usage::

    PYTHONPATH=src python benchmarks/bench_gateway.py                 # full
    PYTHONPATH=src python benchmarks/bench_gateway.py --quick         # CI-size
    PYTHONPATH=src python benchmarks/bench_gateway.py --validate BENCH_gateway.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
from pathlib import Path

if __package__ in (None, ""):
    # allow `python benchmarks/bench_gateway.py` without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.gateway import GatewayApp, replay_campaign, serve_in_thread
from repro.observability import atomic_write_json, tracing

SCHEMA_VERSION = 1

#: the slowest campaign must sustain at least this many answered
#: questions per second end-to-end over loopback HTTP
MIN_QUESTIONS_PER_SECOND = 25.0
#: p95 budget for the answer-ingestion path (seconds)
MAX_ANSWER_P95_SECONDS = 0.25

#: campaigns per mode: (domain, seeds)
FULL_CAMPAIGNS = (("demo", (0, 1, 2)), ("travel", (0, 1, 2)))
QUICK_CAMPAIGNS = (("demo", (0, 1)), ("travel", (0,)))

#: short member polls keep the latency histograms about the server, not
#: about how long the bench chose to long-poll
MEMBER_WAIT_SECONDS = 0.05


def run_campaign(domain: str, seed: int, *, sessions: int, crowd_size: int,
                 max_runtime: float) -> dict:
    """One traced loopback campaign; returns report + latency quantiles."""
    app = GatewayApp()
    with tracing() as tracer:
        with serve_in_thread(app) as handle:
            report = replay_campaign(
                host=handle.host,
                port=handle.port,
                domain=domain,
                sessions=sessions,
                crowd_size=crowd_size,
                sample_size=3,
                seed=seed,
                wait=MEMBER_WAIT_SECONDS,
                max_runtime=max_runtime,
                verify=True,
            )
    latencies = {}
    for name, histogram in sorted(tracer.histograms.items()):
        if histogram.count == 0:
            continue
        latencies[name] = {
            "count": histogram.count,
            "p50_ms": round(histogram.quantile(0.50) * 1000, 3),
            "p95_ms": round(histogram.quantile(0.95) * 1000, 3),
            "p99_ms": round(histogram.quantile(0.99) * 1000, 3),
            "max_ms": round(histogram.max_seconds * 1000, 3),
        }
    counters = tracer.counters
    return {
        "domain": domain,
        "seed": seed,
        "sessions": sessions,
        "crowd_size": crowd_size,
        "verified": bool(report.get("verified")),
        "mismatches": report.get("mismatches", []),
        "errors": report.get("errors", []),
        "timed_out": bool(report.get("timed_out")),
        "questions_answered": report["questions_answered"],
        "elapsed_seconds": report["elapsed_seconds"],
        "questions_per_second": report["questions_per_second"],
        "requests": counters.get("gateway.requests", 0),
        "duplicates": counters.get("gateway.answers.duplicate", 0),
        "backpressure_rejections": counters.get(
            "gateway.backpressure.rejected", 0
        ),
        "latency": latencies,
    }


def build_report(quick: bool) -> dict:
    campaigns = QUICK_CAMPAIGNS if quick else FULL_CAMPAIGNS
    runs = []
    for domain, seeds in campaigns:
        for seed in seeds:
            runs.append(
                run_campaign(
                    domain,
                    seed,
                    sessions=2,
                    crowd_size=4,
                    max_runtime=120.0,
                )
            )
    throughputs = [r["questions_per_second"] for r in runs]
    answer_p95s = [
        r["latency"]["gateway.latency.answer"]["p95_ms"] / 1000.0
        for r in runs
        if "gateway.latency.answer" in r["latency"]
    ]
    return {
        "schema_version": SCHEMA_VERSION,
        "benchmark": "gateway",
        "quick": quick,
        "python": platform.python_version(),
        "platform": platform.platform(),
        "member_wait_seconds": MEMBER_WAIT_SECONDS,
        "runs": runs,
        "all_identical": all(r["verified"] for r in runs),
        "min_questions_per_second": round(min(throughputs), 2),
        "throughput_floor": MIN_QUESTIONS_PER_SECOND,
        "worst_answer_p95_seconds": round(max(answer_p95s), 4)
        if answer_p95s
        else None,
        "answer_p95_budget_seconds": MAX_ANSWER_P95_SECONDS,
    }


def validate(report: dict) -> list:
    """Schema and acceptance checks; returns a list of problems."""
    problems = []
    if report.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version != {SCHEMA_VERSION}")
    runs = report.get("runs", [])
    if len(runs) < 2:
        problems.append("fewer than 2 campaigns in the report")
    domains = {run.get("domain") for run in runs}
    if not {"demo", "travel"} <= domains:
        problems.append(f"campaigns must cover demo and travel, got {sorted(domains)}")
    for run in runs:
        tag = f"{run.get('domain')}/seed{run.get('seed')}"
        if not run.get("verified"):
            problems.append(f"{tag}: gateway MSPs diverged from serial execute")
        if run.get("errors"):
            problems.append(f"{tag}: member errors {run['errors']}")
        if run.get("timed_out"):
            problems.append(f"{tag}: campaign timed out")
        latency = run.get("latency", {})
        for endpoint in ("gateway.latency.answer", "gateway.latency.next",
                         "gateway.latency.query", "gateway.latency.result"):
            row = latency.get(endpoint, {})
            for key in ("p50_ms", "p95_ms", "p99_ms"):
                if not isinstance(row.get(key), (int, float)):
                    problems.append(f"{tag}: {endpoint} missing {key}")
    if not report.get("all_identical"):
        problems.append("all_identical is false")
    floor = report.get("throughput_floor", MIN_QUESTIONS_PER_SECOND)
    slowest = report.get("min_questions_per_second")
    if not isinstance(slowest, (int, float)) or slowest < floor:
        problems.append(
            f"sustained throughput {slowest} q/s is below the {floor} q/s floor"
        )
    budget = report.get("answer_p95_budget_seconds", MAX_ANSWER_P95_SECONDS)
    worst = report.get("worst_answer_p95_seconds")
    if not isinstance(worst, (int, float)) or worst > budget:
        problems.append(
            f"worst POST /answer p95 {worst}s exceeds the {budget}s budget"
        )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer seeds per domain (CI-size)")
    parser.add_argument("--output", default="BENCH_gateway.json")
    parser.add_argument("--validate", metavar="PATH",
                        help="re-check an existing report; no runs")
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text(encoding="utf-8"))
        problems = validate(report)
        for problem in problems:
            print(f"problem: {problem}", file=sys.stderr)
        print(f"{args.validate}: {'FAIL' if problems else 'ok'}")
        return 1 if problems else 0

    report = build_report(args.quick)
    atomic_write_json(args.output, report)
    for run in report["runs"]:
        answer = run["latency"].get("gateway.latency.answer", {})
        print(
            f"{run['domain']:7} seed {run['seed']}: "
            f"{run['questions_answered']:6} answers "
            f"{run['questions_per_second']:8.1f} q/s  "
            f"answer p95 {answer.get('p95_ms', '-'):>8} ms  "
            f"identical={run['verified']}"
        )
    print(
        f"slowest campaign: {report['min_questions_per_second']} q/s "
        f"(floor {report['throughput_floor']}); worst answer p95 "
        f"{report['worst_answer_p95_seconds']}s "
        f"(budget {report['answer_p95_budget_seconds']}s)"
    )
    print(f"wrote {args.output}")
    problems = validate(report)
    for problem in problems:
        print(f"problem: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
