"""Shared, memoized Figure-4 domain runs for the benchmark suite.

The crowd-statistics and pace benchmarks consume the same expensive
multi-user executions; this module runs each domain once per pytest session
and hands the result to every benchmark that needs it.
"""

from repro.datasets import culinary, health, travel
from repro.experiments import run_domain

_CONFIG = {
    "travel": dict(
        module=travel, crowd_size=20, max_values_per_var=2, max_more_facts=1
    ),
    "culinary": dict(
        module=culinary, crowd_size=20, max_values_per_var=2, max_more_facts=0
    ),
    "self-treatment": dict(
        module=health, crowd_size=20, max_values_per_var=1, max_more_facts=0
    ),
}

_RUNS = {}


def domain_run(name: str):
    """The (cached) Figure 4 protocol result for ``name``."""
    if name not in _RUNS:
        config = dict(_CONFIG[name])
        module = config.pop("module")
        _RUNS[name] = run_domain(
            module.build_dataset(),
            thresholds=(0.2, 0.3, 0.4, 0.5),
            sample_size=5,
            seed=1,
            transactions=40,
            **config,
        )
    return _RUNS[name]
