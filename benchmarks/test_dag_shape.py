"""Section 6.4 (text): DAG width/depth sweep.

The paper: varying the width between 500 and 2000 and the depth between 4
and 7 "had no significant effect on the observed trends".  We assert that
the vertical algorithm stays ahead of the horizontal one at the 50%
milestone for every shape.
"""

import pytest

from conftest import run_once
from repro.experiments.shape import render_shape_sweep, run_shape_sweep


@pytest.mark.benchmark(group="dag-shape")
def test_shape_sweep(benchmark, show):
    results = run_once(
        benchmark,
        lambda: run_shape_sweep(
            widths=(500, 1000, 2000),
            depths=(4, 7),
            msp_fraction=0.02,
            trials=3,
            milestone=0.5,
        ),
    )
    show(render_shape_sweep(results))
    for (width, depth), per_algorithm in results.items():
        vertical = per_algorithm["vertical"]
        horizontal = per_algorithm["horizontal"]
        assert vertical is not None and horizontal is not None
        assert vertical <= horizontal, (
            f"trend flipped at width={width}, depth={depth}"
        )
