#!/usr/bin/env python
"""Machine-readable performance report for the bitset/TID-index hot paths.

Three sections, emitted as one JSON document (``BENCH_perf.json``):

* ``closure`` — ``leq`` via the compiled bitset closures vs. the retained
  DFS reference, on a paper-scale (≥4,000-node) random taxonomy;
* ``support`` — support counting via the TID-bitset index
  (:mod:`repro.crowd.tid_index`) vs. the per-transaction scan
  (:meth:`PersonalDatabase.support_reference`), same taxonomy scale;
* ``e2e`` — full engine runs per experiment domain under all three support
  modes (:func:`repro.crowd.personal_db.set_support_backend`): forced
  ``reference``, forced ``tid`` and the default ``adaptive`` cost model.
  The mined MSPs and question counts must be *identical* across all three
  and the adaptive run must land within 5% of the best forced backend; the
  per-domain **backend-choice table** (chosen backend, cost-model features
  and estimates, ``backend.*`` counters) is what docs/PERFORMANCE.md
  renders.  Any divergence makes the process exit non-zero: the
  optimization must be observationally invisible.

Usage::

    PYTHONPATH=src python benchmarks/bench_report.py                # full
    PYTHONPATH=src python benchmarks/bench_report.py --quick        # CI-size
    PYTHONPATH=src python benchmarks/bench_report.py --validate BENCH_perf.json

``--validate`` re-checks an existing report against the JSON schema and the
acceptance thresholds (≥5× support speedup at ≥4,000 nodes, all e2e runs
identical) without re-running anything.
"""

from __future__ import annotations

import argparse
import json
import platform
import random
import sys
import time
from pathlib import Path

if __package__ in (None, ""):
    # allow `python benchmarks/bench_report.py` without PYTHONPATH fiddling
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.crowd.personal_db import PersonalDatabase, set_support_backend
from repro.datasets import culinary, health, travel
from repro.engine.config import EngineConfig
from repro.engine.engine import OassisEngine
from repro.observability import atomic_write_json, tracing
from repro.ontology.facts import Fact, FactSet
from repro.synth.taxonomy import random_vocabulary
from repro.vocabulary.terms import ANY_ELEMENT

SCHEMA_VERSION = 2

#: acceptance thresholds (mirrored in --validate)
MIN_DAG_NODES = 4000
MIN_SUPPORT_SPEEDUP = 5.0
#: the adaptive run may trail the best forced backend by at most this factor
MAX_ADAPTIVE_OVERHEAD = 1.05

_DOMAINS = {
    "travel": dict(module=travel, max_values_per_var=2, max_more_facts=1),
    "culinary": dict(module=culinary, max_values_per_var=2, max_more_facts=0),
    "self-treatment": dict(module=health, max_values_per_var=1, max_more_facts=0),
}


def _best_of(repeats, fn):
    """Minimum wall time of ``repeats`` calls (classic micro-bench hygiene)."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None or elapsed < best else best
    return best


def _workload(rng, vocabulary, transactions, facts_per_tx, queries, max_facts):
    """A random personal DB plus a distinct-query workload over it."""
    elements = sorted(vocabulary.elements, key=lambda e: e.name)
    relations = sorted(vocabulary.relations, key=lambda r: r.name)
    fact_sets = []
    for _ in range(transactions):
        facts = [
            Fact(rng.choice(elements), rng.choice(relations), rng.choice(elements))
            for _ in range(rng.randint(2, facts_per_tx))
        ]
        fact_sets.append(FactSet(facts))
    db = PersonalDatabase.from_fact_sets(fact_sets)
    workload = []
    for _ in range(queries):
        facts = []
        for _ in range(rng.randint(1, max_facts)):
            subject = rng.choice(elements + [ANY_ELEMENT])
            facts.append(Fact(subject, rng.choice(relations), rng.choice(elements)))
        workload.append(FactSet(facts))
    return db, workload


def bench_closure(node_count, pairs, repeats, seed):
    """``leq`` bitset vs. DFS reference on a paper-scale taxonomy."""
    rng = random.Random(seed)
    build_start = time.perf_counter()
    vocabulary = random_vocabulary(element_count=node_count, depth=6, seed=seed)
    build_seconds = time.perf_counter() - build_start
    order = vocabulary.element_order

    compile_start = time.perf_counter()
    order.leq(next(iter(order.terms())), next(iter(order.terms())))
    compile_seconds = time.perf_counter() - compile_start

    terms = sorted(order.terms())
    sample = [(rng.choice(terms), rng.choice(terms)) for _ in range(pairs)]

    def run_bitset():
        for a, b in sample:
            order.leq(a, b)

    def run_reference():
        for a, b in sample:
            order.leq_reference(a, b)

    bitset_seconds = _best_of(repeats, run_bitset)
    reference_seconds = _best_of(max(1, repeats // 2), run_reference)
    return {
        "node_count": len(order),
        "build_seconds": round(build_seconds, 6),
        "compile_seconds": round(compile_seconds, 6),
        "leq_pairs": pairs,
        "bitset_seconds": round(bitset_seconds, 6),
        "reference_seconds": round(reference_seconds, 6),
        "speedup": round(reference_seconds / max(bitset_seconds, 1e-9), 2),
    }


def bench_support(node_count, transactions, queries, repeats, seed):
    """Support counting: TID-bitset index vs. per-transaction scan."""
    rng = random.Random(seed)
    vocabulary = random_vocabulary(element_count=node_count, depth=6, seed=seed)
    db, workload = _workload(
        rng,
        vocabulary,
        transactions=transactions,
        facts_per_tx=8,
        queries=queries,
        max_facts=3,
    )

    def run_optimized():
        db._hits_cache.clear()  # measure index work, not the memo
        for query in workload:
            db.support(query, vocabulary)

    def run_reference():
        for query in workload:
            db.support_reference(query, vocabulary)

    with tracing() as tracer:
        db.tid_index(vocabulary)  # build outside the timed region
        optimized_seconds = _best_of(repeats, run_optimized)
    reference_seconds = _best_of(max(1, repeats // 2), run_reference)

    # both paths must agree on the whole workload
    mismatches = sum(
        1
        for query in workload
        if db.support(query, vocabulary) != db.support_reference(query, vocabulary)
    )
    counters = tracer.report().get("counters", {})
    return {
        "node_count": len(vocabulary.element_order),
        "transactions": transactions,
        "queries": queries,
        "optimized_seconds": round(optimized_seconds, 6),
        "reference_seconds": round(reference_seconds, 6),
        "speedup": round(reference_seconds / max(optimized_seconds, 1e-9), 2),
        "mismatches": mismatches,
        "index_counters": {
            k: v for k, v in counters.items() if k.startswith("tid_index.")
        },
    }


def _run_domain_once(name, backend, crowd_size, transactions, sample_size, seed):
    """One full engine execution for ``name`` under ``backend``.

    Under ``"adaptive"`` the run also captures the ``backend.*`` counters
    and one representative member's full cost-model decision — the raw
    material of the per-domain backend-choice table.
    """
    config = _DOMAINS[name]
    dataset = config["module"].build_dataset()
    members = dataset.build_crowd(
        size=crowd_size, seed=seed, transactions=transactions
    )
    engine = OassisEngine(
        dataset.ontology,
        config=EngineConfig(
            max_values_per_var=config["max_values_per_var"],
            max_more_facts=config["max_more_facts"],
        ),
    )
    previous = set_support_backend(backend)
    try:
        with tracing() as tracer:
            start = time.perf_counter()
            result = engine.execute(
                dataset.query(threshold=0.2),
                members,
                sample_size=sample_size,
                more_pool=dataset.more_pool,
            )
            elapsed = time.perf_counter() - start
        run = {
            "seconds": elapsed,
            "questions": result.questions,
            "msps": sorted(repr(a) for a in result.all_msps),
        }
        if backend == "adaptive":
            counters = tracer.report().get("counters", {})
            run["counters"] = {
                key: value
                for key, value in sorted(counters.items())
                if key.startswith(("backend.", "support.count."))
            }
            decision = members[0].database.backend_decision(
                dataset.ontology.vocabulary
            )
            run["decision"] = {
                "backend": decision.backend,
                "scan_cost": round(decision.scan_cost, 4),
                "tid_cost": round(decision.tid_cost, 4),
                "features": decision.features._asdict(),
            }
    finally:
        set_support_backend(previous)
    return run


def bench_e2e(domains, crowd_size, transactions, sample_size, seed):
    """Per-domain reference / tid / adaptive runs.

    MSPs and question counts must be identical across all three modes, and
    the adaptive run must stay within ``MAX_ADAPTIVE_OVERHEAD`` of the best
    forced backend (re-measured once before declaring a miss, since the
    sub-second domains are noise-sensitive).
    """
    report = {}
    for name in domains:
        runs = {
            backend: _run_domain_once(
                name, backend, crowd_size, transactions, sample_size, seed
            )
            for backend in ("reference", "tid", "adaptive")
        }
        ref_run, tid_run, adaptive_run = (
            runs["reference"], runs["tid"], runs["adaptive"]
        )
        identical = all(
            run["msps"] == ref_run["msps"]
            and run["questions"] == ref_run["questions"]
            for run in (tid_run, adaptive_run)
        )
        best_forced = min(ref_run["seconds"], tid_run["seconds"])
        if adaptive_run["seconds"] > best_forced * MAX_ADAPTIVE_OVERHEAD:
            retry = _run_domain_once(
                name, "adaptive", crowd_size, transactions, sample_size, seed
            )
            if retry["seconds"] < adaptive_run["seconds"]:
                adaptive_run = {**adaptive_run, "seconds": retry["seconds"]}
        features = adaptive_run["decision"]["features"]
        report[name] = {
            "identical": identical,
            "msp_count": len(ref_run["msps"]),
            "questions": ref_run["questions"],
            "reference_seconds": round(ref_run["seconds"], 4),
            "tid_seconds": round(tid_run["seconds"], 4),
            "adaptive_seconds": round(adaptive_run["seconds"], 4),
            "speedup": round(
                ref_run["seconds"] / max(tid_run["seconds"], 1e-9), 2
            ),
            "adaptive_vs_best": round(
                adaptive_run["seconds"] / max(best_forced, 1e-9), 3
            ),
            "backend_choice": {
                "backend": adaptive_run["decision"]["backend"],
                "scan_cost": adaptive_run["decision"]["scan_cost"],
                "tid_cost": adaptive_run["decision"]["tid_cost"],
                "transactions": features["transactions"],
                "total_facts": features["total_facts"],
                "taxonomy_terms": features["taxonomy_terms"],
                "taxonomy_height": features["taxonomy_height"],
                "avg_closure": round(features["avg_closure"], 3),
                "fan_out": round(features["fan_out"], 3),
                "counters": adaptive_run["counters"],
            },
        }
        if not identical:
            report[name]["question_counts"] = {
                backend: runs[backend]["questions"] for backend in runs
            }
            report[name]["msp_diff"] = {
                "tid_only": sorted(set(tid_run["msps"]) - set(ref_run["msps"])),
                "reference_only": sorted(
                    set(ref_run["msps"]) - set(tid_run["msps"])
                ),
                "adaptive_only": sorted(
                    set(adaptive_run["msps"]) - set(ref_run["msps"])
                ),
            }
    return report


# ------------------------------------------------------------------ schema


def validate_schema(report):
    """Raise ValueError when ``report`` violates the expected shape."""

    def need(mapping, key, kind, where):
        if key not in mapping:
            raise ValueError(f"{where}: missing key {key!r}")
        if not isinstance(mapping[key], kind):
            raise ValueError(
                f"{where}.{key}: expected {kind}, got {type(mapping[key]).__name__}"
            )
        return mapping[key]

    if not isinstance(report, dict):
        raise ValueError("report must be a JSON object")
    if need(report, "schema_version", int, "report") != SCHEMA_VERSION:
        raise ValueError(f"unknown schema_version {report['schema_version']!r}")
    need(report, "mode", str, "report")
    need(report, "python", str, "report")
    for section in ("closure", "support"):
        block = need(report, section, dict, "report")
        for key in ("node_count", "speedup", "bitset_seconds", "reference_seconds") \
                if section == "closure" else \
                ("node_count", "speedup", "optimized_seconds", "reference_seconds"):
            need(block, key, (int, float), section)
    e2e = need(report, "e2e", dict, "report")
    if not e2e:
        raise ValueError("e2e: at least one domain required")
    for name, block in e2e.items():
        need(block, "identical", bool, f"e2e.{name}")
        need(block, "questions", int, f"e2e.{name}")
        need(block, "msp_count", int, f"e2e.{name}")
        for key in ("reference_seconds", "tid_seconds", "adaptive_seconds",
                    "adaptive_vs_best"):
            need(block, key, (int, float), f"e2e.{name}")
        choice = need(block, "backend_choice", dict, f"e2e.{name}")
        if need(choice, "backend", str, f"e2e.{name}.backend_choice") not in (
            "tid", "reference"
        ):
            raise ValueError(
                f"e2e.{name}.backend_choice.backend: "
                f"unknown backend {choice['backend']!r}"
            )
        for key in ("scan_cost", "tid_cost", "avg_closure", "fan_out"):
            need(choice, key, (int, float), f"e2e.{name}.backend_choice")
        for key in ("transactions", "total_facts", "taxonomy_terms",
                    "taxonomy_height"):
            need(choice, key, int, f"e2e.{name}.backend_choice")
        need(choice, "counters", dict, f"e2e.{name}.backend_choice")


def check_thresholds(report):
    """Acceptance criteria; returns a list of failure strings."""
    failures = []
    support = report["support"]
    if support["node_count"] < MIN_DAG_NODES:
        failures.append(
            f"support bench ran at {support['node_count']} nodes "
            f"(need ≥{MIN_DAG_NODES})"
        )
    if support["speedup"] < MIN_SUPPORT_SPEEDUP:
        failures.append(
            f"support speedup {support['speedup']}× below the "
            f"{MIN_SUPPORT_SPEEDUP}× bar"
        )
    if support.get("mismatches", 0):
        failures.append(f"{support['mismatches']} support value mismatches")
    for name, block in report["e2e"].items():
        if not block["identical"]:
            failures.append(f"e2e[{name}]: backends produced different results")
        if block["adaptive_vs_best"] > MAX_ADAPTIVE_OVERHEAD:
            failures.append(
                f"e2e[{name}]: adaptive run {block['adaptive_vs_best']}× the "
                f"best forced backend (cap {MAX_ADAPTIVE_OVERHEAD}×)"
            )
    return failures


# -------------------------------------------------------------------- main


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="CI-sized workloads (seconds, not minutes)"
    )
    parser.add_argument(
        "--output", default=None, help="where to write the JSON report"
    )
    parser.add_argument(
        "--validate",
        metavar="PATH",
        default=None,
        help="validate an existing report instead of benchmarking",
    )
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args(argv)

    if args.validate:
        report = json.loads(Path(args.validate).read_text())
        validate_schema(report)
        failures = check_thresholds(report)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(f"{args.validate}: schema + thresholds OK")
        return 0

    if args.quick:
        node_count, pairs, repeats = 4200, 2000, 2
        transactions, queries = 40, 60
        # travel's assignment space is ~10k questions per run; the quick
        # (CI) profile keeps the A/B check on the two fast domains
        domains = ("culinary", "self-treatment")
        crowd_size, tx_per_member, sample_size = 6, 20, 3
    else:
        node_count, pairs, repeats = 4700, 5000, 3
        transactions, queries = 60, 120
        domains = tuple(_DOMAINS)
        crowd_size, tx_per_member, sample_size = 12, 30, 5

    print(f"closure bench: {node_count}-node taxonomy, {pairs} leq pairs ...")
    closure = bench_closure(node_count, pairs, repeats, args.seed)
    print(
        f"  bitset {closure['bitset_seconds']}s vs reference "
        f"{closure['reference_seconds']}s -> {closure['speedup']}x"
    )
    print(f"support bench: {transactions} transactions, {queries} queries ...")
    support = bench_support(node_count, transactions, queries, repeats, args.seed)
    print(
        f"  tid-index {support['optimized_seconds']}s vs scan "
        f"{support['reference_seconds']}s -> {support['speedup']}x"
    )
    print(f"e2e equivalence: {', '.join(domains)} ...")
    e2e = bench_e2e(domains, crowd_size, tx_per_member, sample_size, args.seed)
    for name, block in e2e.items():
        status = "identical" if block["identical"] else "DIVERGED"
        print(
            f"  {name}: {status}, {block['msp_count']} MSPs, "
            f"{block['questions']} questions, ref/tid {block['speedup']}x, "
            f"adaptive chose {block['backend_choice']['backend']} "
            f"({block['adaptive_vs_best']}x best forced)"
        )

    report = {
        "schema_version": SCHEMA_VERSION,
        "mode": "quick" if args.quick else "full",
        "python": platform.python_version(),
        "seed": args.seed,
        "closure": closure,
        "support": support,
        "e2e": e2e,
    }
    validate_schema(report)

    output = args.output or (
        "BENCH_quick.json" if args.quick else "BENCH_perf.json"
    )
    atomic_write_json(output, report)
    print(f"wrote {output}")

    failures = check_thresholds(report)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
