"""Figure 4f: effect of specialization answers and user-guided pruning.

Synthetic single-user runs (DAG width 500, depth 7, 2% MSPs, 6 trials)
across the paper's six answer-type configurations, printing the questions
needed to discover X% of the valid MSPs.

Paper trend asserted: a higher ratio of the special answer types improves
performance (fewer questions), "although not by much".
"""

import pytest

from conftest import run_once
from repro.experiments import render_figure4f, run_figure4f


@pytest.mark.benchmark(group="figure4f")
def test_fig4f_answer_types(benchmark, show):
    results = run_once(
        benchmark,
        lambda: run_figure4f(width=500, depth=7, msp_fraction=0.02, trials=6, seed=0),
    )
    show(render_figure4f(results))

    closed = results["100% closed"][1.0]
    assert closed is not None
    # every assisted configuration should be no worse (small tolerance for
    # randomized tie-breaking)
    for label in ("10% special.", "50% special.", "100% special.",
                  "25% pruning", "50% pruning"):
        assisted = results[label][1.0]
        assert assisted is not None
        assert assisted <= closed * 1.10, label
    # and the effect is monotone-ish in the specialization ratio
    assert results["100% special."][1.0] <= results["10% special."][1.0] * 1.10
    # pruning helps more with a higher click ratio
    assert results["50% pruning"][1.0] <= results["25% pruning"][1.0] * 1.10
