"""Culinary preferences: multiplicities in action (Section 6.3).

The culinary query uses ``$x+ servedWith $y`` — the ``+`` multiplicity lets
an answer combine several dishes with one drink, which is how the paper
found that "crowd members often have a steak with fries and a coke".  This
example mines such combinations from a simulated crowd and contrasts the
crowd-mined output with offline frequent-fact-set mining on the (normally
virtual!) personal databases, showing they agree.

Run with::

    python examples/culinary_menu.py
"""

from repro import EngineConfig, OassisEngine
from repro.datasets import culinary
from repro.mining import (
    maximal_fact_sets,
    mine_association_rules,
    mine_frequent_fact_sets,
)


def main():
    dataset = culinary.build_dataset()
    engine = OassisEngine(
        dataset.ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=0)
    )
    query = engine.parse(dataset.query(0.3))

    print("=== Culinary preferences ===")
    print(dataset.query(0.3).strip())
    print()

    crowd = dataset.build_crowd(size=20, seed=2)
    result = engine.execute(query, crowd, sample_size=5)

    print(f"Crowd mining: {result.questions} questions asked")
    print("Popular dish/drink combinations (MSPs):")
    for row in result:
        facts = " + ".join(str(f) for f in sorted(row.fact_set))
        marker = " (multi-dish!)" if len(row.fact_set) > 1 else ""
        print(f"  [{row.support:.2f}] {facts}{marker}")
    print()

    # ------------------------------------------------------------------
    # Offline comparison: OASSIS-QL semantics over materialized DBs.  In
    # the real system the personal DBs are virtual; the simulation lets us
    # check that crowd mining found the same frequent patterns.
    print("Offline verification (mining the materialized personal DBs):")
    databases = [[t.facts for t in member.database] for member in crowd]
    frequent = mine_frequent_fact_sets(
        databases, dataset.ontology.vocabulary, threshold=0.3, max_size=2
    )
    maximal = maximal_fact_sets(frequent, dataset.ontology.vocabulary)
    for fact_sets in sorted(maximal, key=lambda fs: -frequent[fs])[:8]:
        facts = " + ".join(str(f) for f in sorted(fact_sets))
        print(f"  [{frequent[fact_sets]:.2f}] {facts}")
    print()
    crowd_patterns = {row.fact_set for row in result}
    offline_patterns = set(maximal)
    overlap = crowd_patterns & offline_patterns
    print(
        f"Overlap: {len(overlap)} of {len(crowd_patterns)} crowd-mined MSPs "
        "also found by offline mining"
    )
    print()

    # ------------------------------------------------------------------
    # Association rules (the language guide's extension): which dish
    # reliably predicts which drink?
    print("Association rules (confidence >= 0.8, lift > 1.1):")
    rules = mine_association_rules(
        frequent,
        min_confidence=0.8,
        vocabulary=dataset.ontology.vocabulary,
        min_lift=1.1,
    )
    for rule in rules[:6]:
        print(f"  {rule}")


if __name__ == "__main__":
    main()
