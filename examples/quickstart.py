"""Quickstart: evaluate the paper's Figure 2 query end-to-end.

Builds the Figure 1 ontology, simulates a small crowd whose personal
histories are Table 3's databases, and runs the multi-user mining algorithm
to produce the answers from the paper's introduction ("Go biking in Central
Park and eat at Maoz Vegetarian...").

Run with::

    python examples/quickstart.py

Pass ``--stats`` to also print the observability summary (questions asked,
cache hit rate, nodes pruned by inference, per-phase wall time) and
``--stats-json PATH`` to write the machine-readable report — see
``docs/OBSERVABILITY.md``.
"""

import argparse
import json

from repro import CrowdCache, CrowdMember, EngineConfig, OassisEngine
from repro.crowd import PersonalDatabase
from repro.datasets import running_example
from repro.observability import tracing


class AverageMember(CrowdMember):
    """Example 4.6's ``u_avg``: answers the average support of u1 and u2.

    The paper's walkthrough aggregates the two Table 3 members this way;
    using u_avg directly makes the quickstart deterministic (the example
    supports sit exactly on the 0.4 threshold: avg(1/3, 1/2) = 5/12).
    """

    def __init__(self, member_id, databases, vocabulary):
        super().__init__(member_id, PersonalDatabase(), vocabulary)
        self._databases = list(databases.values())

    def true_support(self, fact_set):
        supports = [
            db.support(fact_set, self.vocabulary) for db in self._databases
        ]
        return sum(supports) / len(supports)


def build_crowd(ontology, databases, copies=10):
    """A crowd of u_avg members, enough for the 5-answer quorum."""
    return [
        AverageMember(f"u_avg-{index}", databases, ontology.vocabulary)
        for index in range(copies)
    ]


def run_quickstart():
    ontology = running_example.build_ontology()
    databases = running_example.build_personal_databases()
    engine = OassisEngine(
        ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )

    print("=== OASSIS quickstart ===")
    print()
    print("Query (Figure 2 of the paper):")
    print(running_example.SAMPLE_QUERY.strip())
    print()

    query = engine.parse(running_example.SAMPLE_QUERY)
    crowd = build_crowd(ontology, databases)
    cache = CrowdCache()
    result = engine.execute(
        query,
        crowd,
        sample_size=5,
        cache=cache,
        more_pool=running_example.more_pool(),
        include_invalid=False,
    )

    print(f"Crowd members consulted : {len(crowd)}")
    print(f"Questions asked         : {result.questions}")
    print(f"Answers cached          : {cache.total_answers()}")
    print()
    print("Answers (maximal significant patterns):")
    print(result.render())


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print the observability summary table after the run",
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write the machine-readable observability report to PATH",
    )
    args = parser.parse_args(argv)

    if not (args.stats or args.stats_json):
        run_quickstart()
        return

    with tracing() as tracer:
        run_quickstart()
    report = tracer.report()
    if args.stats:
        print()
        print(tracer.render())
    if args.stats_json:
        with open(args.stats_json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")


if __name__ == "__main__":
    main()
