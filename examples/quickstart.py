"""Quickstart: evaluate the paper's Figure 2 query end-to-end.

Builds the Figure 1 ontology, simulates a small crowd whose personal
histories are Table 3's databases, and runs the multi-user mining algorithm
to produce the answers from the paper's introduction ("Go biking in Central
Park and eat at Maoz Vegetarian...").

Run with::

    python examples/quickstart.py
"""

from repro import CrowdCache, CrowdMember, OassisEngine
from repro.crowd import PersonalDatabase
from repro.datasets import running_example


class AverageMember(CrowdMember):
    """Example 4.6's ``u_avg``: answers the average support of u1 and u2.

    The paper's walkthrough aggregates the two Table 3 members this way;
    using u_avg directly makes the quickstart deterministic (the example
    supports sit exactly on the 0.4 threshold: avg(1/3, 1/2) = 5/12).
    """

    def __init__(self, member_id, databases, vocabulary):
        super().__init__(member_id, PersonalDatabase(), vocabulary)
        self._databases = list(databases.values())

    def true_support(self, fact_set):
        supports = [
            db.support(fact_set, self.vocabulary) for db in self._databases
        ]
        return sum(supports) / len(supports)


def build_crowd(ontology, databases, copies=10):
    """A crowd of u_avg members, enough for the 5-answer quorum."""
    return [
        AverageMember(f"u_avg-{index}", databases, ontology.vocabulary)
        for index in range(copies)
    ]


def main():
    ontology = running_example.build_ontology()
    databases = running_example.build_personal_databases()
    engine = OassisEngine(ontology, max_values_per_var=2, max_more_facts=1)

    print("=== OASSIS quickstart ===")
    print()
    print("Query (Figure 2 of the paper):")
    print(running_example.SAMPLE_QUERY.strip())
    print()

    query = engine.parse(running_example.SAMPLE_QUERY)
    crowd = build_crowd(ontology, databases)
    cache = CrowdCache()
    result = engine.execute(
        query,
        crowd,
        sample_size=5,
        cache=cache,
        more_pool=running_example.more_pool(),
        include_invalid=False,
    )

    print(f"Crowd members consulted : {len(crowd)}")
    print(f"Questions asked         : {result.questions}")
    print(f"Answers cached          : {cache.total_answers()}")
    print()
    print("Answers (maximal significant patterns):")
    print(result.render())


if __name__ == "__main__":
    main()
