"""Travel planner: the Section 6.3 travel scenario on the Tel Aviv domain.

Runs the running-example-style query ("an activity at a family-friendly
attraction with a restaurant nearby, plus other advice") against a simulated
crowd, then re-evaluates at higher support thresholds from the answer cache
— no new crowd questions — exactly the paper's threshold-sweep protocol.

Run with::

    python examples/travel_planner.py [--crowd-size N]

The travel domain is the largest of the three (the paper's too); expect a
few minutes for the base run at the default crowd size.
"""

import argparse

from repro import CrowdCache, EngineConfig, OassisEngine
from repro.datasets import travel


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--crowd-size", type=int, default=12)
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    dataset = travel.build_dataset()
    engine = OassisEngine(
        dataset.ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    query = engine.parse(dataset.query(0.2))

    print("=== Travel planner (Tel Aviv) ===")
    print(f"Ontology: {len(dataset.ontology)} facts, "
          f"{len(dataset.ontology.vocabulary)} vocabulary terms")
    print(f"Crowd: {args.crowd_size} simulated members "
          "(12% specialization answers, 13% pruning clicks)")
    print()

    crowd = dataset.build_crowd(size=args.crowd_size, seed=args.seed)
    cache = CrowdCache()
    result = engine.execute(
        query, crowd, sample_size=5, cache=cache, more_pool=dataset.more_pool
    )

    print(f"Threshold 0.2: {result.questions} questions, "
          f"{len(result)} recommendations")
    for row in list(result)[:6]:
        facts = ", ".join(str(f) for f in sorted(row.fact_set))
        print(f"  [{row.support:.2f}] {facts}")
    print()

    member_ids = [m.member_id for m in crowd]
    for threshold in (0.3, 0.4, 0.5):
        replayed, mined = engine.replay(
            query, member_ids, cache, threshold=threshold, sample_size=5
        )
        print(
            f"Threshold {threshold}: replayed from cache using "
            f"{mined.questions} answers -> {len(replayed)} recommendations"
        )
        for row in list(replayed)[:3]:
            facts = ", ".join(str(f) for f in sorted(row.fact_set))
            print(f"  [{row.support:.2f}] {facts}")
    print()
    print("Note how raising the threshold reuses the cached answers and")
    print("returns fewer, more universally popular recommendations.")


if __name__ == "__main__":
    main()
