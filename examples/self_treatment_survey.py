"""Self-treatment survey: remedies for common symptoms (Section 6.3).

The health-research scenario: what do people actually take for headaches,
sore throats, back pain?  Demonstrates the single-user vertical algorithm
(Algorithm 1) next to the multi-user run, and prints the answer-type
statistics the paper reports (concrete vs. specialization vs. pruning).

Run with::

    python examples/self_treatment_survey.py
"""

from repro import EngineConfig, OassisEngine
from repro.crowd import FixedSampleAggregator
from repro.datasets import health
from repro.engine.adapters import MemberUser
from repro.mining import MultiUserMiner


def main():
    dataset = health.build_dataset()
    engine = OassisEngine(
        dataset.ontology, config=EngineConfig(max_values_per_var=1, max_more_facts=0)
    )
    query = engine.parse(dataset.query(0.2))

    print("=== Self-treatment survey ===")
    print(dataset.query(0.2).strip())
    print()

    # --- single member first: Algorithm 1 exactly as in Section 4.1
    member = dataset.build_crowd(size=1, seed=5, transactions=60)[0]
    single = engine.execute_single_user(query, member)
    print(f"Single member ({member.member_id}): "
          f"{single.questions} questions, {len(single)} personal MSPs")
    for row in list(single)[:5]:
        facts = ", ".join(str(f) for f in sorted(row.fact_set))
        print(f"  [{row.support:.2f}] {facts}")
    print()

    # --- the full crowd, with answer-type statistics
    crowd = dataset.build_crowd(size=25, seed=5)
    space = engine.build_space(query)
    aggregator = FixedSampleAggregator(0.2, sample_size=5)
    users = [MemberUser(m, space) for m in crowd]
    miner = MultiUserMiner(space, users, aggregator)
    mined = miner.run()

    print(f"Crowd of {len(crowd)}: {mined.questions} questions, "
          f"{len(mined.valid_msps)} MSPs")
    stats = mined.stats
    total = max(stats.total, 1)
    print("Answer types (the paper observed 12% specialization, 13% pruning):")
    print(f"  concrete        : {stats.concrete} ({100 * stats.concrete / total:.0f}%)")
    print(f"  specialization  : {stats.specialization} "
          f"({100 * stats.specialization / total:.0f}%), "
          f"of which 'none of these': {stats.none_of_these}")
    print(f"  pruning clicks  : {stats.pruning_clicks} "
          f"({100 * stats.pruning_clicks / total:.0f}%)")
    print(f"  'more' tips     : {stats.more_tips} (volunteered, no question cost)")
    print()
    print("Crowd consensus (remedy takeFor symptom):")
    for msp in sorted(mined.valid_msps, key=repr)[:10]:
        support = aggregator.average_support(msp)
        facts = ", ".join(str(f) for f in sorted(space.instantiate(msp)))
        shown = "?" if support is None else f"{support:.2f}"
        print(f"  [{shown}] {facts}")


if __name__ == "__main__":
    main()
