"""Interactive demo: be the crowd yourself (the Section 6.2 UI, in text).

OASSIS's QueueManager hands out one question at a time; you answer on the
paper's five-point frequency scale (never / rarely / sometimes / often /
very often), can *specify* more detail implicitly by answering the follow-up
questions the traversal generates, and can prune irrelevant values.  As
answers accumulate, the confirmed recommendations update live.

Run interactively::

    python examples/interactive_demo.py

or let a simulated member answer automatically::

    python examples/interactive_demo.py --auto
"""

import argparse

from repro import EngineConfig, OassisEngine
from repro.crowd.questions import FREQUENCY_SCALE, frequency_to_support
from repro.datasets import running_example
from repro.nlg import render_assignment


def answer_interactively(question):
    print()
    print(f"Q: {question.text}")
    options = ", ".join(label for label, _ in FREQUENCY_SCALE)
    print(f"   ({options}; or 'prune <Value>' / 'quit')")
    while True:
        raw = input("> ").strip().lower()
        if raw in dict(FREQUENCY_SCALE):
            return ("support", frequency_to_support(raw))
        if raw.startswith("prune "):
            return ("prune", raw[len("prune "):].strip())
        if raw == "quit":
            return ("quit", None)
        print("please answer with one of the frequency labels")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--auto", action="store_true",
                        help="answer automatically from Table 3's u1+u2 average")
    parser.add_argument("--max-questions", type=int, default=40)
    args = parser.parse_args()

    ontology = running_example.build_ontology()
    engine = OassisEngine(
        ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    qm = engine.queue_manager(
        running_example.FRAGMENT_QUERY,
        sample_size=1,
        more_pool=running_example.more_pool(),
    )

    databases = running_example.build_personal_databases()
    vocab = ontology.vocabulary

    def auto_answer(question):
        facts = qm.space.instantiate(question.assignment)
        supports = [db.support(facts, vocab) for db in databases.values()]
        return sum(supports) / len(supports)

    print("=== OASSIS interactive crowd session ===")
    print("Query: activities at child-friendly NYC attractions (Figure 2,")
    print("restaurant part omitted for brevity)")

    member_id = "you"
    answered = 0
    while answered < args.max_questions:
        question = qm.next_question(member_id)
        if question is None:
            print("\nNo more questions — everything relevant is classified!")
            break
        if args.auto:
            support = auto_answer(question)
            print(f"Q: {question.text}")
            print(f"   (auto-answer: {support:.2f})")
            qm.submit_support(member_id, support)
        else:
            kind, value = answer_interactively(question)
            if kind == "quit":
                break
            if kind == "prune":
                from repro.vocabulary import Element

                qm.submit_prune(member_id, Element(value))
                print(f"   pruned everything involving {value!r}")
            else:
                qm.submit_support(member_id, value)
        answered += 1
        msps = qm.current_msps()
        if msps:
            print(f"   confirmed so far: "
                  f"{'; '.join(render_assignment(m) for m in msps)}")

    print()
    print(f"Session over after {qm.questions_asked} answers.")
    print("Final recommendations:")
    for msp in qm.current_msps():
        print(f"  * {render_assignment(msp)}")


if __name__ == "__main__":
    main()
