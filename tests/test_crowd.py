"""Unit tests for the crowd substrate: DBs, questions, members, aggregation."""

import random

import pytest

from repro.assignments import Assignment
from repro.crowd import (
    ConcreteQuestion,
    CrowdCache,
    CrowdMember,
    FixedSampleAggregator,
    MajorityAggregator,
    NoneOfTheseAnswer,
    OracleMember,
    PersonalDatabase,
    SpammerMember,
    SpecializationAnswer,
    SpecializationQuestion,
    Transaction,
    TrustWeightedAggregator,
    Verdict,
    frequency_to_support,
    quantize_support,
    support_to_frequency,
)
from repro.datasets import running_example
from repro.ontology import FactSet, fact_set
from repro.vocabulary import Element


@pytest.fixture(scope="module")
def setting():
    ontology = running_example.build_ontology()
    dbs = running_example.build_personal_databases()
    return ontology.vocabulary, dbs


class TestPersonalDatabase:
    def test_len_and_iter(self, setting):
        _, dbs = setting
        assert len(dbs["u1"]) == 6
        assert len(list(dbs["u1"])) == 6

    def test_empty_database_support_zero(self, setting):
        vocab, _ = setting
        empty = PersonalDatabase()
        assert empty.support(fact_set(("A", "doAt", "B")), vocab) == 0.0

    def test_empty_fact_set_support_one(self, setting):
        vocab, dbs = setting
        assert dbs["u1"].support(FactSet(), vocab) == 1.0

    def test_supporting_transactions(self, setting):
        vocab, dbs = setting
        fs = fact_set(("Biking", "doAt", "Central Park"))
        supporting = dbs["u1"].supporting_transactions(fs, vocab)
        assert {t.transaction_id for t in supporting} == {"T3", "T4"}

    def test_from_fact_sets(self, setting):
        vocab, _ = setting
        db = PersonalDatabase.from_fact_sets(
            [fact_set(("A", "doAt", "B"))], prefix="X"
        )
        assert next(iter(db)).transaction_id == "X1"

    def test_add_invalidates_cache(self, setting):
        vocab, _ = setting
        db = PersonalDatabase()
        fs = fact_set(("A", "doAt", "B"))
        assert db.support(fs, vocab) == 0.0
        db.add(Transaction("T1", fs))
        assert db.support(fs, vocab) == 1.0


class TestFrequencyScale:
    def test_round_trip_labels(self):
        for label in ("never", "rarely", "sometimes", "often", "very often"):
            assert support_to_frequency(frequency_to_support(label)) == label

    def test_quantize_snaps_to_nearest(self):
        assert quantize_support(0.1) == 0.0
        assert quantize_support(0.2) == 0.25
        assert quantize_support(0.6) == 0.5
        assert quantize_support(0.9) == 1.0

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            frequency_to_support("constantly")

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            support_to_frequency(1.5)


class TestCrowdMember:
    def test_truthful_concrete_answer(self, setting):
        vocab, dbs = setting
        member = CrowdMember("u1", dbs["u1"], vocab)
        question = ConcreteQuestion(
            Assignment.make(vocab, {}),
            fact_set(("Biking", "doAt", "Central Park")),
        )
        assert member.answer_concrete(question).support == pytest.approx(1 / 3)

    def test_noise_stays_in_range(self, setting):
        vocab, dbs = setting
        member = CrowdMember(
            "u1", dbs["u1"], vocab, noise=0.5, rng=random.Random(7)
        )
        question = ConcreteQuestion(
            Assignment.make(vocab, {}),
            fact_set(("Biking", "doAt", "Central Park")),
        )
        for _ in range(50):
            assert 0.0 <= member.answer_concrete(question).support <= 1.0

    def test_quantized_answers_on_scale(self, setting):
        vocab, dbs = setting
        member = CrowdMember("u1", dbs["u1"], vocab, quantize=True)
        question = ConcreteQuestion(
            Assignment.make(vocab, {}),
            fact_set(("Biking", "doAt", "Central Park")),
        )
        assert member.answer_concrete(question).support in (0.0, 0.25, 0.5, 0.75, 1.0)

    def test_max_questions_limits_willingness(self, setting):
        vocab, dbs = setting
        member = CrowdMember("u1", dbs["u1"], vocab, max_questions=1)
        assert member.willing_to_answer()
        question = ConcreteQuestion(Assignment.make(vocab, {}), FactSet())
        member.answer_concrete(question)
        assert not member.willing_to_answer()

    def test_specialization_picks_highest_support(self, setting):
        vocab, dbs = setting
        member = CrowdMember("u1", dbs["u1"], vocab)
        monkey = Assignment.make(vocab, {"y": {Element("Feed a monkey")}})
        biking = Assignment.make(vocab, {"y": {Element("Biking")}})

        def instantiate(assignment):
            activity = next(iter(assignment.get("y")))
            return fact_set((activity.name, "doAt", "Bronx Zoo"))

        question = SpecializationQuestion(
            Assignment.make(vocab, {}), FactSet(), [monkey, biking]
        )
        answer = member.answer_specialization(question, instantiate)
        assert isinstance(answer, SpecializationAnswer)
        assert answer.chosen == monkey  # 3/6 beats 0

    def test_specialization_none_of_these(self, setting):
        vocab, dbs = setting
        member = CrowdMember("u1", dbs["u1"], vocab)
        swimming = Assignment.make(vocab, {"y": {Element("Swimming")}})

        def instantiate(assignment):
            return fact_set(("Swimming", "doAt", "Central Park"))

        question = SpecializationQuestion(
            Assignment.make(vocab, {}), FactSet(), [swimming]
        )
        answer = member.answer_specialization(question, instantiate)
        assert isinstance(answer, NoneOfTheseAnswer)
        assert answer.candidates == [swimming]

    def test_prunable_value(self, setting):
        vocab, dbs = setting
        member = CrowdMember(
            "u1",
            dbs["u1"],
            vocab,
            pruning_ratio=1.0,
            irrelevant_values=[Element("Water Sport")],
            rng=random.Random(0),
        )
        swimming_node = Assignment.make(vocab, {"y": {Element("Swimming")}})
        assert member.prunable_value(swimming_node) == Element("Water Sport")
        biking_node = Assignment.make(vocab, {"y": {Element("Biking")}})
        assert member.prunable_value(biking_node) is None

    def test_oracle_member(self, setting):
        vocab, _ = setting
        member = OracleMember("o", lambda node: 0.7, vocab)
        question = ConcreteQuestion(Assignment.make(vocab, {}), FactSet())
        assert member.answer_concrete(question).support == 0.7

    def test_spammer_in_range(self, setting):
        vocab, _ = setting
        spammer = SpammerMember("s", vocab, rng=random.Random(3))
        question = ConcreteQuestion(Assignment.make(vocab, {}), FactSet())
        values = {spammer.answer_concrete(question).support for _ in range(20)}
        assert all(0.0 <= v <= 1.0 for v in values)
        assert len(values) > 5  # actually random


class TestAggregators:
    def test_fixed_sample_undecided_until_quota(self):
        agg = FixedSampleAggregator(0.4, sample_size=3)
        agg.add_answer("a", "u1", 1.0)
        agg.add_answer("a", "u2", 1.0)
        assert agg.verdict("a") is Verdict.UNDECIDED
        agg.add_answer("a", "u3", 0.0)
        assert agg.verdict("a") is Verdict.SIGNIFICANT  # avg 2/3 >= 0.4

    def test_fixed_sample_insignificant(self):
        agg = FixedSampleAggregator(0.5, sample_size=2)
        agg.add_answer("a", "u1", 0.2)
        agg.add_answer("a", "u2", 0.3)
        assert agg.verdict("a") is Verdict.INSIGNIFICANT

    def test_average_support(self):
        agg = FixedSampleAggregator(0.5, sample_size=2)
        assert agg.average_support("a") is None
        agg.add_answer("a", "u1", 0.2)
        agg.add_answer("a", "u2", 0.4)
        assert agg.average_support("a") == pytest.approx(0.3)

    def test_majority(self):
        agg = MajorityAggregator(0.5, sample_size=3)
        agg.add_answer("a", "u1", 0.9)
        agg.add_answer("a", "u2", 0.9)
        agg.add_answer("a", "u3", 0.0)
        assert agg.verdict("a") is Verdict.SIGNIFICANT

    def test_trust_weighted_discounts_spammer(self):
        agg = TrustWeightedAggregator(0.5, sample_size=2, trust={"spam": 0.0})
        agg.add_answer("a", "spam", 1.0)
        agg.add_answer("a", "good", 0.1)
        assert agg.verdict("a") is Verdict.INSIGNIFICANT

    def test_has_answered(self):
        agg = FixedSampleAggregator(0.5)
        agg.add_answer("a", "u1", 0.2)
        assert agg.has_answered("a", "u1")
        assert not agg.has_answered("a", "u2")

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FixedSampleAggregator(0.0)
        with pytest.raises(ValueError):
            FixedSampleAggregator(0.5, sample_size=0)


class TestCrowdCache:
    def test_record_and_lookup(self):
        cache = CrowdCache()
        cache.record("a", "u1", 0.4)
        assert cache.lookup("a", "u1") == 0.4
        assert cache.lookup("a", "u2") is None
        assert cache.hits == 1
        assert cache.misses == 1

    def test_answers_for_preserves_order(self):
        cache = CrowdCache()
        cache.record("a", "u1", 0.1)
        cache.record("a", "u2", 0.2)
        assert cache.answers_for("a") == [("u1", 0.1), ("u2", 0.2)]

    def test_totals(self):
        cache = CrowdCache()
        cache.record("a", "u1", 0.1)
        cache.record("b", "u1", 0.2)
        assert len(cache) == 2
        assert cache.total_answers() == 2

    def test_json_round_trip(self):
        cache = CrowdCache()
        cache.record("a", "u1", 0.25)
        restored = CrowdCache.from_json(cache.to_json())
        assert restored.answers_for("'a'") == [("u1", 0.25)]

    def test_clear_statistics(self):
        cache = CrowdCache()
        cache.lookup("a", "u1")
        cache.clear_statistics()
        assert cache.misses == 0
