"""Unit tests for the indexed ontology triple store."""

import pytest

from repro.ontology import Fact, Ontology, fact_set
from repro.vocabulary import Element, Relation


@pytest.fixture()
def onto() -> Ontology:
    o = Ontology()
    o.add(Fact("Park", "subClassOf", "Outdoor"))
    o.add(Fact("Central Park", "instanceOf", "Park"))
    o.add(Fact("Central Park", "inside", "NYC"))
    o.add(Fact("Maoz Veg", "nearBy", "Central Park"))
    o.vocabulary.specialize_relation("nearBy", "inside")
    o.add_label("Central Park", "child-friendly")
    return o


class TestMutation:
    def test_add_registers_vocabulary(self, onto):
        assert onto.vocabulary.has_element("Central Park")
        assert onto.vocabulary.has_relation("inside")

    def test_add_is_idempotent(self, onto):
        before = len(onto)
        onto.add(Fact("Central Park", "inside", "NYC"))
        assert len(onto) == before

    def test_taxonomy_facts_extend_element_order(self, onto):
        # "Park subClassOf Outdoor" means Outdoor ≤E Park
        assert onto.vocabulary.leq(Element("Outdoor"), Element("Park"))
        # instanceOf works the same way
        assert onto.vocabulary.leq(Element("Park"), Element("Central Park"))

    def test_add_all(self):
        o = Ontology()
        o.add_all([("A", "r", "B"), ("C", "r", "D")])
        assert len(o) == 2


class TestMatching:
    def test_fully_bound(self, onto):
        assert list(onto.match(Element("Central Park"), Relation("inside"), Element("NYC")))
        assert not list(onto.match(Element("NYC"), Relation("inside"), Element("Central Park")))

    def test_subject_relation(self, onto):
        facts = list(onto.match(subject=Element("Central Park"), relation=Relation("inside")))
        assert facts == [Fact("Central Park", "inside", "NYC")]

    def test_relation_object(self, onto):
        facts = list(onto.match(relation=Relation("instanceOf"), obj=Element("Park")))
        assert facts == [Fact("Central Park", "instanceOf", "Park")]

    def test_subject_object(self, onto):
        facts = list(onto.match(subject=Element("Central Park"), obj=Element("NYC")))
        assert facts == [Fact("Central Park", "inside", "NYC")]

    def test_subject_only(self, onto):
        facts = set(onto.match(subject=Element("Central Park")))
        assert len(facts) == 2

    def test_relation_only(self, onto):
        facts = list(onto.match(relation=Relation("nearBy")))
        assert facts == [Fact("Maoz Veg", "nearBy", "Central Park")]

    def test_object_only(self, onto):
        facts = list(onto.match(obj=Element("NYC")))
        assert facts == [Fact("Central Park", "inside", "NYC")]

    def test_wildcard_everything(self, onto):
        assert len(list(onto.match())) == len(onto)

    def test_objects_subjects_helpers(self, onto):
        assert onto.objects(Element("Central Park"), Relation("inside")) == {Element("NYC")}
        assert onto.subjects(Relation("inside"), Element("NYC")) == {Element("Central Park")}


class TestSemantics:
    def test_holds_asserted(self, onto):
        assert onto.holds(("Central Park", "inside", "NYC"))

    def test_holds_via_relation_generalization(self, onto):
        # nearBy ≤ inside, so "Central Park nearBy NYC" is implied
        assert onto.holds(("Central Park", "nearBy", "NYC"))
        assert not onto.holds(("NYC", "nearBy", "Central Park"))

    def test_holds_via_element_generalization(self, onto):
        # Park ≤ Central Park, so "Park inside NYC" is implied
        assert onto.holds(("Park", "inside", "NYC"))

    def test_implies_fact_set(self, onto):
        assert onto.implies(
            fact_set(("Park", "inside", "NYC"), ("Maoz Veg", "nearBy", "Central Park"))
        )
        assert not onto.implies(fact_set(("Pine", "nearBy", "NYC")))


class TestLabels:
    def test_labels_lookup(self, onto):
        assert onto.labels("Central Park") == {"child-friendly"}
        assert onto.labels("NYC") == frozenset()

    def test_has_label(self, onto):
        assert onto.has_label("Central Park", "child-friendly")
        assert not onto.has_label("Central Park", "romantic")

    def test_elements_with_label(self, onto):
        assert onto.elements_with_label("child-friendly") == {Element("Central Park")}


class TestCopy:
    def test_copy_independent(self, onto):
        dup = onto.copy()
        dup.add(Fact("Pine", "nearBy", "Bronx Zoo"))
        assert ("Pine", "nearBy", "Bronx Zoo") not in onto
        assert ("Pine", "nearBy", "Bronx Zoo") in dup

    def test_copy_preserves_labels(self, onto):
        assert onto.copy().labels("Central Park") == {"child-friendly"}
