"""Tests for association rules and the top-k / diversify extensions."""

import pytest

from repro.assignments import Assignment
from repro.datasets import running_example
from repro.mining import (
    AssociationRule,
    assignment_distance,
    diversify,
    mine_association_rules,
    mine_frequent_fact_sets,
    vertical_mine_top_k,
)
from repro.ontology import fact_set
from repro.synth import generate_dag, place_msps
from repro.vocabulary import Element


class TestAssociationRules:
    @pytest.fixture(scope="class")
    def frequent(self):
        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        databases = [
            [t.facts for t in dbs["u1"]],
            [t.facts for t in dbs["u2"]],
        ]
        return (
            mine_frequent_fact_sets(databases, ontology.vocabulary, 0.3, max_size=2),
            ontology.vocabulary,
        )

    def test_biking_implies_falafel(self, frequent):
        table, vocab = frequent
        rules = mine_association_rules(table, min_confidence=0.9, vocabulary=vocab)
        wanted = [
            r
            for r in rules
            if r.antecedent == fact_set(("Biking", "doAt", "Central Park"))
            and r.consequent == fact_set(("Falafel", "eatAt", "Maoz Veg"))
        ]
        # every biking transaction in Table 3 includes falafel at Maoz Veg
        assert wanted and wanted[0].confidence == pytest.approx(1.0)

    def test_confidence_threshold_filters(self, frequent):
        table, vocab = frequent
        strict = mine_association_rules(table, min_confidence=0.99, vocabulary=vocab)
        loose = mine_association_rules(table, min_confidence=0.5, vocabulary=vocab)
        assert len(strict) <= len(loose)
        assert all(r.confidence >= 0.99 for r in strict)

    def test_generalization_consequents_dropped(self, frequent):
        table, vocab = frequent
        rules = mine_association_rules(table, min_confidence=0.1, vocabulary=vocab)
        for rule in rules:
            assert not rule.consequent.leq(rule.antecedent, vocab)

    def test_rules_sorted_by_confidence(self, frequent):
        table, vocab = frequent
        rules = mine_association_rules(table, min_confidence=0.3, vocabulary=vocab)
        confidences = [r.confidence for r in rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_invalid_confidence(self, frequent):
        table, _ = frequent
        with pytest.raises(ValueError):
            mine_association_rules(table, min_confidence=0.0)

    def test_str_rendering(self, frequent):
        table, vocab = frequent
        rules = mine_association_rules(table, min_confidence=0.9, vocabulary=vocab)
        assert rules and "=>" in str(rules[0])


class TestTopK:
    def test_stops_after_k(self):
        dag = generate_dag(width=200, depth=6, seed=1)
        planted = place_msps(dag, 8, valid_only=True, seed=1)
        full_questions = None
        from repro.mining import vertical_mine

        full = vertical_mine(dag, planted.support, 0.5)
        top2 = vertical_mine_top_k(dag, planted.support, 0.5, k=2)
        assert len(top2.msps) == 2
        assert top2.questions < full.questions
        assert set(top2.msps) <= set(full.msps)

    def test_k_larger_than_available(self):
        dag = generate_dag(width=80, depth=4, seed=2)
        planted = place_msps(dag, 3, valid_only=True, seed=2)
        result = vertical_mine_top_k(dag, planted.support, 0.5, k=50)
        assert len(result.msps) == 3

    def test_invalid_k(self):
        dag = generate_dag(width=40, depth=3, seed=0)
        planted = place_msps(dag, 2, seed=0)
        with pytest.raises(ValueError):
            vertical_mine_top_k(dag, planted.support, 0.5, k=0)

    def test_results_are_real_msps(self):
        dag = generate_dag(width=150, depth=5, seed=3)
        planted = place_msps(dag, 6, valid_only=True, seed=3)
        result = vertical_mine_top_k(dag, planted.support, 0.5, k=3)
        for msp in result.msps:
            assert planted.is_significant(msp)
            assert all(
                not planted.is_significant(s) for s in dag.successors(msp)
            )


class TestDiversify:
    @pytest.fixture(scope="class")
    def vocab(self):
        return running_example.build_ontology().vocabulary

    def test_distance_zero_for_identical(self, vocab):
        a = Assignment.single(vocab, x=Element("Central Park"))
        assert assignment_distance(a, a, vocab) == 0.0

    def test_distance_orders_similarity(self, vocab):
        base = Assignment.single(vocab, x=Element("Central Park"), y=Element("Biking"))
        refine = Assignment.single(vocab, x=Element("Central Park"), y=Element("Sport"))
        unrelated = Assignment.single(
            vocab, x=Element("Bronx Zoo"), y=Element("Feed a monkey")
        )
        assert assignment_distance(base, refine, vocab) < assignment_distance(
            base, unrelated, vocab
        )

    def test_diversify_prefers_spread(self, vocab):
        park_biking = Assignment.single(
            vocab, x=Element("Central Park"), y=Element("Biking")
        )
        park_basketball = Assignment.single(
            vocab, x=Element("Central Park"), y=Element("Basketball")
        )
        zoo_monkey = Assignment.single(
            vocab, x=Element("Bronx Zoo"), y=Element("Feed a monkey")
        )
        chosen = diversify(
            [park_biking, park_basketball, zoo_monkey],
            2,
            lambda a, b: assignment_distance(a, b, vocab),
            seed=0,
        )
        # any diverse pair must span both attractions
        xs = {next(iter(c.get("x"))) for c in chosen}
        assert len(xs) == 2

    def test_diversify_small_pool_returned_whole(self, vocab):
        a = Assignment.single(vocab, x=Element("Central Park"))
        assert diversify([a], 5, lambda x, y: 0.0) == [a]

    def test_diversify_invalid_k(self):
        with pytest.raises(ValueError):
            diversify([], 0, lambda a, b: 0.0)


class TestMinLift:
    def test_min_lift_filters_tautologies(self):
        from repro.datasets import culinary
        from repro.crowd import PersonalDatabase

        dataset = culinary.build_dataset()
        members = dataset.build_crowd(size=8, seed=4, transactions=30)
        databases = [[t.facts for t in m.database] for m in members]
        frequent = mine_frequent_fact_sets(
            databases, dataset.ontology.vocabulary, 0.3, max_size=2
        )
        all_rules = mine_association_rules(
            frequent, min_confidence=0.8, vocabulary=dataset.ontology.vocabulary
        )
        lifted = mine_association_rules(
            frequent, min_confidence=0.8,
            vocabulary=dataset.ontology.vocabulary, min_lift=1.1,
        )
        assert len(lifted) <= len(all_rules)
        assert all(r.lift >= 1.1 for r in lifted)
