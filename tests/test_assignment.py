"""Unit tests for assignments with multiplicities (Definition 4.1)."""

import pytest

from repro.assignments import Assignment, canonical_facts, canonical_values
from repro.datasets import running_example
from repro.oassisql import parse_query
from repro.ontology import Fact
from repro.vocabulary import Element


@pytest.fixture(scope="module")
def vocab():
    return running_example.build_ontology().vocabulary


@pytest.fixture(scope="module")
def satisfying():
    # use the blank-resolved clause via the generator's rewrite
    from repro.assignments.generator import _resolve_blanks

    query = parse_query(running_example.SAMPLE_QUERY)
    return _resolve_blanks(query.satisfying)


def E(name: str) -> Element:
    return Element(name)


class TestCanonicalization:
    def test_canonical_values_drops_generalizations(self, vocab):
        values = canonical_values({E("Sport"), E("Biking")}, vocab)
        assert values == {E("Biking")}

    def test_canonical_values_keeps_incomparable(self, vocab):
        values = canonical_values({E("Biking"), E("Ball Game")}, vocab)
        assert values == {E("Biking"), E("Ball Game")}

    def test_canonical_values_idempotent(self, vocab):
        once = canonical_values({E("Sport"), E("Biking"), E("Baseball")}, vocab)
        assert canonical_values(once, vocab) == once

    def test_canonical_facts(self, vocab):
        facts = canonical_facts(
            {
                Fact("Sport", "doAt", "Central Park"),
                Fact("Biking", "doAt", "Central Park"),
            },
            vocab,
        )
        assert facts == {Fact("Biking", "doAt", "Central Park")}


class TestOrderRelation:
    def test_leq_single_values(self, vocab):
        general = Assignment.single(vocab, x=E("Park"), y=E("Sport"))
        specific = Assignment.single(vocab, x=E("Central Park"), y=E("Biking"))
        assert general.leq(specific, vocab)
        assert not specific.leq(general, vocab)

    def test_leq_requires_witness_per_value(self, vocab):
        small = Assignment.make(vocab, {"y": {E("Ball Game")}})
        big = Assignment.make(vocab, {"y": {E("Biking"), E("Basketball")}})
        # Ball Game <= Basketball gives the witness
        assert small.leq(big, vocab)
        # but {Biking} has no witness in {Ball Game}
        assert not Assignment.make(vocab, {"y": {E("Biking")}}).leq(
            Assignment.make(vocab, {"y": {E("Ball Game")}}), vocab
        )

    def test_subset_is_more_general(self, vocab):
        one = Assignment.make(vocab, {"y": {E("Biking")}})
        two = Assignment.make(vocab, {"y": {E("Biking"), E("Ball Game")}})
        assert one.leq(two, vocab)
        assert not two.leq(one, vocab)

    def test_missing_variable_means_empty(self, vocab):
        empty = Assignment.make(vocab, {})
        bound = Assignment.single(vocab, x=E("Park"))
        assert empty.leq(bound, vocab)
        assert not bound.leq(empty, vocab)

    def test_more_facts_participate_in_order(self, vocab):
        base = Assignment.single(vocab, x=E("Central Park"))
        extended = base.with_more_fact(vocab, Fact("Rent Bikes", "doAt", "Boathouse"))
        assert base.leq(extended, vocab)
        assert not extended.leq(base, vocab)

    def test_strictly_leq(self, vocab):
        a = Assignment.single(vocab, x=E("Park"))
        assert not a.strictly_leq(a, vocab)
        b = Assignment.single(vocab, x=E("Central Park"))
        assert a.strictly_leq(b, vocab)

    def test_figure3_example_phi17_leq_phi20(self, vocab):
        phi17 = Assignment.single(vocab, x=E("Central Park"), y=E("Ball Game"))
        phi20 = Assignment.single(vocab, x=E("Central Park"), y=E("Baseball"))
        assert phi17.leq(phi20, vocab)


class TestInstantiation:
    def test_phi16_instantiation(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        phi16 = Assignment.make(
            vocab,
            {
                "x": {E("Central Park")},
                "y": {E("Biking")},
                "z": {E("Maoz Veg")},
                "__any_0": {ANY_ELEMENT},
            },
        )
        facts = phi16.instantiate(satisfying)
        assert Fact("Biking", "doAt", "Central Park") in facts
        assert Fact(ANY_ELEMENT, "eatAt", "Maoz Veg") in facts
        assert len(facts) == 2

    def test_multiplicity_cross_product(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        phi = Assignment.make(
            vocab,
            {
                "x": {E("Central Park")},
                "y": {E("Biking"), E("Baseball")},
                "z": {E("Maoz Veg")},
                "__any_0": {ANY_ELEMENT},
            },
        )
        facts = phi.instantiate(satisfying)
        assert Fact("Biking", "doAt", "Central Park") in facts
        assert Fact("Baseball", "doAt", "Central Park") in facts

    def test_multiplicity_zero_drops_meta_fact(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        phi = Assignment.make(
            vocab,
            {
                "x": {E("Central Park")},
                "z": {E("Maoz Veg")},
                "__any_0": {ANY_ELEMENT},
            },
        )
        facts = phi.instantiate(satisfying)
        # $y+ doAt $x dropped since y is empty; [] eatAt $z remains
        assert len(facts) == 1
        assert Fact(ANY_ELEMENT, "eatAt", "Maoz Veg") in facts

    def test_more_facts_appended(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        phi = Assignment.make(
            vocab,
            {"x": {E("Central Park")}, "y": {E("Biking")}, "z": {E("Maoz Veg")},
             "__any_0": {ANY_ELEMENT}},
            more=[Fact("Rent Bikes", "doAt", "Boathouse")],
        )
        assert Fact("Rent Bikes", "doAt", "Boathouse") in phi.instantiate(satisfying)


class TestMultiplicityChecks:
    def test_satisfies_multiplicities(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        good = Assignment.make(
            vocab,
            {"x": {E("Central Park")}, "y": {E("Biking")}, "z": {E("Maoz Veg")},
             "__any_0": {ANY_ELEMENT}},
        )
        assert good.satisfies_multiplicities(satisfying)

    def test_y_zero_violates_at_least_one(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        missing_y = Assignment.make(
            vocab,
            {"x": {E("Central Park")}, "z": {E("Maoz Veg")}, "__any_0": {ANY_ELEMENT}},
        )
        assert not missing_y.satisfies_multiplicities(satisfying)

    def test_x_two_values_violates_exactly_one(self, vocab, satisfying):
        from repro.vocabulary.terms import ANY_ELEMENT

        two_x = Assignment.make(
            vocab,
            {"x": {E("Central Park"), E("Bronx Zoo")}, "y": {E("Biking")},
             "z": {E("Maoz Veg")}, "__any_0": {ANY_ELEMENT}},
        )
        assert not two_x.satisfies_multiplicities(satisfying)


class TestDerivation:
    def test_with_value_canonicalizes(self, vocab):
        a = Assignment.make(vocab, {"y": {E("Biking")}})
        same = a.with_value(vocab, "y", E("Sport"))  # more general: no-op
        assert same == a
        bigger = a.with_value(vocab, "y", E("Ball Game"))
        assert bigger.get("y") == {E("Biking"), E("Ball Game")}

    def test_with_replaced_value(self, vocab):
        a = Assignment.make(vocab, {"y": {E("Ball Game")}})
        b = a.with_replaced_value(vocab, "y", E("Ball Game"), E("Baseball"))
        assert b.get("y") == {E("Baseball")}

    def test_with_more_fact_and_replace(self, vocab):
        a = Assignment.make(vocab, {"x": {E("Park")}})
        b = a.with_more_fact(vocab, Fact("Rent Bikes", "doAt", "Boathouse"))
        assert len(b.more) == 1
        c = b.with_replaced_more_fact(
            vocab,
            Fact("Rent Bikes", "doAt", "Boathouse"),
            Fact("Rent Bikes", "doAt", "Central Park"),
        )
        assert Fact("Rent Bikes", "doAt", "Central Park") in c.more

    def test_restrict(self, vocab):
        a = Assignment.make(
            vocab, {"x": {E("Park")}, "y": {E("Biking")}},
            more=[Fact("A", "doAt", "B")],
        )
        r = a.restrict(["x"])
        assert r.variables() == {"x"}
        assert not r.more

    def test_size(self, vocab):
        a = Assignment.make(
            vocab, {"x": {E("Park")}, "y": {E("Biking"), E("Ball Game")}},
            more=[Fact("A", "doAt", "B")],
        )
        assert a.size() == 4

    def test_equality_and_hash(self, vocab):
        a = Assignment.single(vocab, x=E("Park"))
        b = Assignment.single(vocab, x=E("Park"))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
