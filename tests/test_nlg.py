"""Tests for natural-language question templating (Section 6.2)."""

import pytest

from repro.assignments import Assignment
from repro.nlg import DEFAULT_TEMPLATES, QuestionTemplates, render_assignment
from repro.ontology import Fact, fact_set
from repro.vocabulary import Element, Vocabulary
from repro.vocabulary.terms import ANY_ELEMENT


class TestTemplates:
    def test_paper_phi17_rendering(self):
        # "How often do you engage in ball games in Central Park?" modulo
        # our verb phrasing
        question = DEFAULT_TEMPLATES.concrete_question(
            fact_set(("Ball Game", "doAt", "Central Park"))
        )
        assert question == "How often do you do ball game at Central Park?"

    def test_conjunction(self):
        question = DEFAULT_TEMPLATES.concrete_question(
            fact_set(
                ("Biking", "doAt", "Central Park"),
                ("Falafel", "eatAt", "Maoz Veg"),
            )
        )
        assert "and also" in question
        assert question.startswith("How often do you")
        assert question.endswith("?")

    def test_wildcard_renders_as_anything(self):
        question = DEFAULT_TEMPLATES.concrete_question(
            fact_set((ANY_ELEMENT, "eatAt", "Maoz Veg"))
        )
        assert "anything" in question

    def test_unknown_relation_fallback(self):
        question = DEFAULT_TEMPLATES.concrete_question(
            fact_set(("Kite", "flownAt", "Beach"))
        )
        assert "flownAt" in question

    def test_specialization_question(self):
        question = DEFAULT_TEMPLATES.specialization_question(
            fact_set(("Sport", "doAt", "Central Park")), "Sport"
        )
        assert question.startswith("What type of sport")
        assert "How often" in question

    def test_register_custom_template(self):
        templates = QuestionTemplates()
        templates.register("drinkWith", "drink {subject} with {object}")
        phrase = templates.phrase(Fact("Coffee", "drinkWith", "Cake"))
        assert phrase == "drink coffee with Cake"

    def test_register_rejects_bad_template(self):
        templates = QuestionTemplates()
        with pytest.raises(ValueError):
            templates.register("r", "no placeholders")

    def test_empty_fact_set(self):
        assert "?" in DEFAULT_TEMPLATES.concrete_question(fact_set())


class TestRenderAssignment:
    def test_renders_variables_and_more(self):
        vocab = Vocabulary()
        vocab.add_element("Biking")
        vocab.add_element("Central Park")
        assignment = Assignment.make(
            vocab,
            {"y": {Element("Biking")}, "__any_0": {ANY_ELEMENT}},
            more=[Fact("Rent Bikes", "doAt", "Boathouse")],
        )
        text = render_assignment(assignment)
        assert "$y = Biking" in text
        assert "(more) Rent Bikes doAt Boathouse" in text
        assert "__any_0" not in text  # hidden variables omitted

    def test_empty_assignment(self):
        vocab = Vocabulary()
        assert render_assignment(Assignment.make(vocab, {})) == "(empty assignment)"
