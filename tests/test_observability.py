"""The observability subsystem: spans, counters, reports, disabled mode."""

import json

import pytest

from repro import CrowdMember, EngineConfig, OassisEngine
from repro.datasets import running_example
from repro.observability import (
    REPORT_VERSION,
    Histogram,
    Tracer,
    build_report,
    count,
    derive,
    disable,
    enable,
    enabled,
    get_tracer,
    is_registered_counter,
    is_registered_histogram,
    is_registered_span,
    observe,
    registered_names,
    render_report,
    render_spans,
    span,
    tracing,
    unregistered_names,
)
from repro.observability.core import _NULL_SPAN


class FakeClock:
    """A deterministic monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


class AverageMember(CrowdMember):
    """The paper's ``u_avg`` (Example 4.6), as in test_engine.py."""

    def __init__(self, member_id, databases, vocabulary):
        from repro.crowd import PersonalDatabase

        super().__init__(member_id, PersonalDatabase(), vocabulary)
        self._databases = databases

    def true_support(self, fact_set):
        supports = [
            db.support(fact_set, self.vocabulary)
            for db in self._databases.values()
        ]
        return sum(supports) / len(supports)


@pytest.fixture(scope="module")
def setting():
    ontology = running_example.build_ontology()
    dbs = running_example.build_personal_databases()
    engine = OassisEngine(
        ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    members = [
        AverageMember(f"avg-{i}", dbs, ontology.vocabulary) for i in range(5)
    ]
    return engine, members


class TestSpans:
    def test_nesting_attributes_time_to_the_open_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("outer"):
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
        outer = tracer.root.children["outer"]
        assert outer.count == 1
        assert outer.total_seconds == pytest.approx(1.25)
        inner = outer.children["inner"]
        assert inner.count == 1
        assert inner.total_seconds == pytest.approx(0.25)
        # inner is a child of outer, not a second root
        assert list(tracer.root.children) == ["outer"]

    def test_same_name_same_parent_aggregates(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        for _ in range(5):
            with tracer.span("loop"):
                clock.advance(0.1)
        node = tracer.root.children["loop"]
        assert node.count == 5
        assert node.total_seconds == pytest.approx(0.5)
        assert len(tracer.root.children) == 1

    def test_same_name_different_parent_stays_separate(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("shared"):
                pass
        with tracer.span("b"):
            with tracer.span("shared"):
                pass
        assert tracer.span_names() == ["a", "a/shared", "b", "b/shared"]

    def test_exception_still_closes_span(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                clock.advance(2.0)
                raise RuntimeError("inside")
        node = tracer.root.children["boom"]
        assert node.total_seconds == pytest.approx(2.0)
        # the stack unwound: new spans open at the root again
        with tracer.span("after"):
            pass
        assert "after" in tracer.root.children

    def test_find_span_depth_first(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("a"):
            with tracer.span("target"):
                pass
        assert tracer.find_span("target").name == "target"
        assert tracer.find_span("absent") is None


class TestCounters:
    def test_aggregation(self):
        tracer = Tracer()
        tracer.count("a")
        tracer.count("a", 4)
        tracer.count("b", 2)
        assert tracer.value("a") == 5
        assert tracer.value("b") == 2
        assert tracer.value("never") == 0

    def test_module_level_count_reaches_active_tracer(self):
        with tracing() as tracer:
            count("x")
            count("x", 2)
        assert tracer.value("x") == 3


class TestDisabledMode:
    def test_disabled_by_default(self):
        assert get_tracer() is None
        assert not enabled()

    def test_span_returns_the_shared_null_context_manager(self):
        assert span("anything") is _NULL_SPAN
        assert span("something.else") is _NULL_SPAN
        with span("noop"):
            pass  # usable as a context manager

    def test_count_is_a_noop(self):
        count("x", 100)  # nothing to assert on — must simply not raise

    def test_result_stats_is_none_when_disabled(self, setting):
        engine, members = setting
        result = engine.execute(
            running_example.FRAGMENT_QUERY, members, sample_size=5
        )
        assert result.stats is None
        assert "stats" not in result.to_dict()

    def test_tracing_is_context_local_and_resets(self):
        assert get_tracer() is None
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert enabled()
            with tracing() as inner:
                assert get_tracer() is inner
            assert get_tracer() is tracer
        assert get_tracer() is None

    def test_enable_disable(self):
        tracer = enable()
        try:
            assert get_tracer() is tracer
        finally:
            assert disable() is tracer
        assert get_tracer() is None


class TestReport:
    def test_derive_cache_hit_rate(self):
        assert derive({"cache.hits": 3, "cache.misses": 1})["cache_hit_rate"] == 0.75
        assert derive({})["cache_hit_rate"] is None

    def test_derive_inference_split(self):
        derived = derive(
            {
                "mining.inferred.significant": 2,
                "mining.inferred.insignificant": 7,
                "mining.classified.by_crowd": 4,
            }
        )
        assert derived["nodes_pruned_by_inference"] == 7
        assert derived["nodes_classified_by_inference"] == 9
        assert derived["nodes_classified_by_crowd"] == 4

    def test_schema_and_json_round_trip(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        with tracer.span("phase"):
            clock.advance(0.5)
            tracer.count("crowd.questions", 3)
        report = build_report(tracer)
        assert report["version"] == REPORT_VERSION
        assert report["counters"] == {"crowd.questions": 3}
        assert report["derived"]["total_questions"] == 3
        (phase,) = report["spans"]
        assert phase == {
            "name": "phase",
            "count": 1,
            "total_s": 0.5,
            "children": [],
        }
        assert json.loads(json.dumps(report)) == report

    def test_render_contains_headline_and_sections(self):
        tracer = Tracer(clock=FakeClock())
        tracer.count("crowd.questions", 12)
        tracer.count("cache.hits", 1)
        tracer.count("cache.misses", 3)
        with tracer.span("engine.execute"):
            pass
        text = tracer.render()
        assert "total questions" in text
        assert "12" in text
        assert "cache hit rate" in text
        assert "25.0%" in text
        assert "nodes pruned by inference" in text
        assert "per-phase wall time" in text
        assert "engine.execute" in text

    def test_render_spans_only(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        text = render_spans(tracer.report())
        assert "outer" in text and "inner" in text
        assert "total questions" not in text


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def traced(self, setting):
        engine, members = setting
        with tracing() as tracer:
            result = engine.execute(
                running_example.FRAGMENT_QUERY, members, sample_size=5
            )
        return tracer, result

    def test_question_counter_matches_result(self, traced):
        tracer, result = traced
        assert tracer.value("crowd.questions") == result.questions
        assert result.stats["counters"]["crowd.questions"] == result.questions
        assert result.stats["derived"]["total_questions"] == result.questions

    def test_span_tree_covers_the_pipeline(self, traced):
        tracer, _ = traced
        execute = tracer.root.children["engine.execute"]
        assert execute.count == 1
        assert execute.total_seconds > 0.0
        for phase in ("engine.parse", "lattice.build", "mine.multiuser",
                      "result.build"):
            assert phase in execute.children, tracer.span_names()

    def test_stats_travel_on_the_result(self, traced):
        _, result = traced
        assert result.stats["version"] == REPORT_VERSION
        # the refreshed report includes the closed engine.execute wall time
        (execute,) = [
            s for s in result.stats["spans"] if s["name"] == "engine.execute"
        ]
        assert execute["total_s"] > 0.0
        assert json.loads(json.dumps(result.stats)) == result.stats
        assert result.to_dict()["stats"] == result.stats

    def test_inference_accounting_present(self, traced):
        tracer, _ = traced
        counters = tracer.counters
        assert counters.get("mining.classified.by_crowd", 0) > 0
        derived = derive(counters)
        total = (
            derived["nodes_classified_by_crowd"]
            + derived["nodes_classified_by_inference"]
        )
        assert total > 0

    def test_render_report_on_real_run(self, traced):
        tracer, _ = traced
        text = render_report(tracer.report())
        assert text.startswith("== observability summary ==")

    def test_every_recorded_name_is_registered(self, traced):
        # the runtime converse of the static tracer-name lint rule: a
        # representative traced run records no counter or span the
        # central registry (repro.observability.names) does not know
        tracer, _ = traced
        assert unregistered_names(tracer) == frozenset()

    def test_registry_helpers(self):
        assert is_registered_counter("crowd.questions")
        assert not is_registered_counter("engine.execute")
        assert is_registered_span("engine.execute")
        assert is_registered_histogram("gateway.latency.next")
        assert not is_registered_histogram("gateway.requests")
        assert (
            registered_names("counter")
            | registered_names("span")
            | registered_names("histogram")
        ) == registered_names()
        with pytest.raises(ValueError):
            registered_names("bogus")


class TestHistograms:
    def test_quantiles_are_clamped_to_observed_range(self):
        histogram = Histogram()
        for value in (0.001, 0.002, 0.003, 0.004, 0.100):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.quantile(0.0) == pytest.approx(0.001)
        assert histogram.quantile(1.0) == pytest.approx(0.100)
        assert 0.001 <= histogram.quantile(0.5) <= 0.004

    def test_empty_histogram_quantile_is_zero(self):
        histogram = Histogram()
        assert histogram.quantile(0.99) == 0.0
        assert histogram.as_dict() == {"count": 0}

    def test_tracer_observe_aggregates_by_name(self):
        tracer = Tracer()
        tracer.observe("gateway.latency.next", 0.01)
        tracer.observe("gateway.latency.next", 0.02)
        tracer.observe("gateway.latency.answer", 0.005)
        assert tracer.histograms["gateway.latency.next"].count == 2
        assert tracer.histograms["gateway.latency.answer"].count == 1

    def test_module_level_observe_reaches_active_tracer(self):
        with tracing() as tracer:
            observe("gateway.latency.health", 0.003)
        assert tracer.histograms["gateway.latency.health"].count == 1
        observe("gateway.latency.health", 0.003)  # disabled: a no-op
        assert tracer.histograms["gateway.latency.health"].count == 1

    def test_unregistered_histogram_name_is_flagged(self):
        tracer = Tracer()
        tracer.observe("gateway.latency.bogus", 0.001)
        assert "gateway.latency.bogus" in unregistered_names(tracer)
        tracer2 = Tracer()
        tracer2.observe("gateway.latency.next", 0.001)
        assert unregistered_names(tracer2) == frozenset()

    def test_report_carries_histograms_and_gateway_section(self):
        tracer = Tracer()
        tracer.observe("gateway.latency.next", 0.01)
        tracer.count("gateway.requests")
        tracer.count("gateway.answers.accepted")
        report = tracer.report()
        assert report["histograms"]["gateway.latency.next"]["count"] == 1
        assert report["gateway"]["requests"] == 1
        text = render_report(report)
        assert "gateway" in text
        assert "latency histograms" in text

    def test_gateway_section_absent_without_gateway_traffic(self):
        tracer = Tracer()
        tracer.count("crowd.questions")
        assert tracer.report().get("gateway") is None
