"""Tests for the three experiment domains (Section 6.3)."""

import pytest

from repro.datasets import all_domains, culinary, health, travel
from repro.engine import EngineConfig, OassisEngine
from repro.oassisql import parse_query, validate


@pytest.fixture(scope="module", params=["travel", "culinary", "health"])
def dataset(request):
    module = {"travel": travel, "culinary": culinary, "health": health}[request.param]
    return module.build_dataset()


class TestDomainConstruction:
    def test_ontology_nonempty(self, dataset):
        assert len(dataset.ontology) > 20

    def test_query_parses_and_validates(self, dataset):
        query = parse_query(dataset.query(0.2))
        assert validate(query, dataset.ontology) == []

    def test_query_threshold_substitution(self, dataset):
        assert parse_query(dataset.query(0.35)).threshold == 0.35

    def test_patterns_use_known_vocabulary(self, dataset):
        vocab = dataset.ontology.vocabulary
        for pattern in dataset.patterns:
            for fact in pattern.fact_set:
                assert vocab.has_element(fact.subject.name), fact
                assert vocab.has_relation(fact.relation.name), fact
                assert vocab.has_element(fact.obj.name), fact

    def test_patterns_span_thresholds(self, dataset):
        supports = sorted(p.mean_support for p in dataset.patterns)
        assert supports[0] < 0.2  # some merge-only leaves
        assert supports[-1] > 0.5  # some survive the top threshold

    def test_crowd_builds_deterministically(self, dataset):
        a = dataset.build_crowd(size=3, seed=9, transactions=10)
        b = dataset.build_crowd(size=3, seed=9, transactions=10)
        for ma, mb in zip(a, b):
            for ta, tb in zip(ma.database, mb.database):
                assert ta.facts == tb.facts

    def test_crowd_behaviour_ratios_wired(self, dataset):
        members = dataset.build_crowd(size=2, seed=0)
        for member in members:
            assert member.specialization_ratio == pytest.approx(0.12)
            assert member.pruning_ratio == pytest.approx(0.13)


class TestDomainSemantics:
    def test_travel_query_space_has_invalid_generals(self):
        ds = travel.build_dataset()
        engine = OassisEngine(
            ds.ontology, config=EngineConfig(max_values_per_var=1, max_more_facts=0)
        )
        query = engine.parse(ds.query(0.2))
        space = engine.build_space(query)
        (root,) = space.roots()
        # the root binds classes, not instances: invalid for this query
        assert not space.is_valid(root)
        assert space.valid_base_assignments()

    def test_class_queries_have_valid_roots(self):
        for module in (culinary, health):
            ds = module.build_dataset()
            engine = OassisEngine(
                ds.ontology, config=EngineConfig(max_values_per_var=1)
            )
            query = engine.parse(ds.query(0.2))
            space = engine.build_space(query)
            for root in space.roots():
                assert space.is_valid(root)

    def test_all_domains_helper(self):
        domains = all_domains()
        assert [d.name for d in domains] == ["travel", "culinary", "self-treatment"]

    def test_planted_support_realized_in_crowd(self):
        ds = health.build_dataset()
        members = ds.build_crowd(size=25, seed=3, transactions=50)
        strongest = max(ds.patterns, key=lambda p: p.mean_support)
        average = sum(
            m.true_support(strongest.fact_set) for m in members
        ) / len(members)
        assert average == pytest.approx(strongest.mean_support, abs=0.12)
