"""The dynamic lock-order checker: wrappers, graph, cycle detection."""

import threading

import pytest

from repro.analysis.lockcheck import (
    LockOrderChecker,
    LockOrderError,
    TrackedLock,
    TrackedRLock,
    checking,
    current_checker,
    install,
    named_lock,
    named_rlock,
    uninstall,
)


class TestFactories:
    def test_plain_locks_without_checker(self):
        assert current_checker() is None
        lock = named_lock("service.manager")
        rlock = named_rlock("service.session")
        assert not isinstance(lock, TrackedLock)
        assert not isinstance(rlock, TrackedRLock)
        with lock:
            pass
        with rlock:
            with rlock:  # still reentrant
                pass

    def test_tracked_locks_with_checker(self):
        with checking() as checker:
            lock = named_lock("service.manager")
            rlock = named_rlock("service.session")
            assert isinstance(lock, TrackedLock)
            assert isinstance(rlock, TrackedRLock)
            assert lock.role == "service.manager"
            assert current_checker() is checker
        assert current_checker() is None

    def test_double_install_raises(self):
        install(LockOrderChecker())
        try:
            with pytest.raises(RuntimeError):
                install(LockOrderChecker())
        finally:
            uninstall()

    def test_uninstalled_checker_keeps_graph_readable(self):
        with checking() as checker:
            a = named_lock("role.a")
            b = named_lock("role.b")
            with a:
                with b:
                    pass
        assert ("role.a", "role.b") in checker.observed
        assert checker.edge_list() == [("role.a", "role.b")]


class TestOrdering:
    def test_consistent_order_is_fine(self):
        with checking() as checker:
            a = named_lock("role.a")
            b = named_lock("role.b")
            for _ in range(3):
                with a:
                    with b:
                        pass
            assert checker.violations == []

    def test_reversed_order_raises_before_blocking(self):
        with checking() as checker:
            a = named_lock("role.a")
            b = named_lock("role.b")
            with a:
                with b:
                    pass
            with pytest.raises(LockOrderError) as exc:
                with b:
                    with a:
                        pass
            assert "cycle" in str(exc.value)
            assert checker.violations

    def test_three_role_cycle_detected(self):
        with checking():
            a = named_lock("role.a")
            b = named_lock("role.b")
            c = named_lock("role.c")
            with a:
                with b:
                    pass
            with b:
                with c:
                    pass
            with pytest.raises(LockOrderError):
                with c:
                    with a:
                        pass

    def test_two_instances_of_same_role_raise(self):
        # two QuerySession locks nested: no defined order between
        # sessions, so this is a deadlock waiting for the reverse
        # interleaving
        with checking():
            s1 = named_rlock("service.session")
            s2 = named_rlock("service.session")
            with pytest.raises(LockOrderError) as exc:
                with s1:
                    with s2:
                        pass
            assert "no defined order" in str(exc.value)

    def test_rlock_reentrancy_is_not_an_ordering_event(self):
        with checking() as checker:
            rlock = named_rlock("service.session")
            with rlock:
                with rlock:
                    pass
            assert checker.violations == []
            assert checker.observed == set()

    def test_nonreentrant_self_reacquire_raises(self):
        with checking():
            lock = named_lock("role.a")
            with pytest.raises(LockOrderError) as exc:
                with lock:
                    with lock:
                        pass
            assert "self-deadlock" in str(exc.value)

    def test_cross_thread_edges_are_merged(self):
        # thread 1 establishes a->b; the main thread's b->a must fail
        with checking():
            a = named_lock("role.a")
            b = named_lock("role.b")

            def establish():
                with a:
                    with b:
                        pass

            worker = threading.Thread(target=establish)
            worker.start()
            worker.join()
            with pytest.raises(LockOrderError):
                with b:
                    with a:
                        pass


class TestForbiddenPairs:
    CONTRACT = [("service.manager", "service.session")]

    def test_manager_then_session_raises(self):
        # the deliberate violation of the docs/SERVICE.md contract: the
        # manager lock and a session lock held together
        with checking(forbid_together=self.CONTRACT) as checker:
            manager = named_lock("service.manager")
            session = named_rlock("service.session")
            with pytest.raises(LockOrderError) as exc:
                with manager:
                    with session:
                        pass
            assert "never be held together" in str(exc.value)
            assert checker.violations

    def test_session_then_manager_raises(self):
        with checking(forbid_together=self.CONTRACT):
            manager = named_lock("service.manager")
            session = named_rlock("service.session")
            with pytest.raises(LockOrderError):
                with session:
                    with manager:
                        pass

    def test_unrelated_roles_are_unaffected(self):
        with checking(forbid_together=self.CONTRACT) as checker:
            session = named_rlock("service.session")
            cache = named_lock("crowd.cache")
            with session:
                with cache:
                    pass
            assert checker.violations == []
            assert ("service.session", "crowd.cache") in checker.observed

    def test_release_reopens_the_pair(self):
        with checking(forbid_together=self.CONTRACT) as checker:
            manager = named_lock("service.manager")
            session = named_rlock("service.session")
            with manager:
                pass
            with session:
                pass
            assert checker.violations == []
