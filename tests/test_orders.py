"""Unit tests for repro.vocabulary.orders.PartialOrder."""

import pytest

from repro.vocabulary.orders import CycleError, PartialOrder
from repro.vocabulary.terms import Element


def sport_order() -> PartialOrder:
    """Activity ≤ Sport ≤ {Ball Game ≤ {Basketball, Baseball}, Biking}."""
    order = PartialOrder()
    edges = [
        ("Activity", "Sport"),
        ("Sport", "Ball Game"),
        ("Sport", "Biking"),
        ("Ball Game", "Basketball"),
        ("Ball Game", "Baseball"),
    ]
    for general, specific in edges:
        order.add_edge(Element(general), Element(specific))
    return order


class TestConstruction:
    def test_add_term_idempotent(self):
        order = PartialOrder()
        order.add_term(Element("A"))
        order.add_term(Element("A"))
        assert len(order) == 1

    def test_self_loop_rejected(self):
        order = PartialOrder()
        with pytest.raises(CycleError):
            order.add_edge(Element("A"), Element("A"))

    def test_cycle_rejected(self):
        order = PartialOrder()
        order.add_edge(Element("A"), Element("B"))
        order.add_edge(Element("B"), Element("C"))
        with pytest.raises(CycleError):
            order.add_edge(Element("C"), Element("A"))

    def test_edge_count_tracks_edges(self):
        order = sport_order()
        assert order.edge_count == 5

    def test_copy_is_independent(self):
        order = sport_order()
        dup = order.copy()
        dup.add_edge(Element("Biking"), Element("Mountain Biking"))
        assert Element("Mountain Biking") not in order
        assert Element("Mountain Biking") in dup

    def test_copy_preserves_edge_count(self):
        order = sport_order()
        assert order.copy().edge_count == order.edge_count


class TestOrderQueries:
    def test_leq_reflexive(self):
        order = sport_order()
        assert order.leq(Element("Sport"), Element("Sport"))

    def test_leq_transitive_reachability(self):
        order = sport_order()
        assert order.leq(Element("Activity"), Element("Basketball"))

    def test_leq_direction(self):
        order = sport_order()
        assert order.leq(Element("Sport"), Element("Biking"))
        assert not order.leq(Element("Biking"), Element("Sport"))

    def test_unregistered_terms_only_self_related(self):
        order = sport_order()
        assert order.leq(Element("Boathouse"), Element("Boathouse"))
        assert not order.leq(Element("Boathouse"), Element("Sport"))

    def test_incomparable_siblings(self):
        order = sport_order()
        assert not order.comparable(Element("Biking"), Element("Ball Game"))

    def test_children_and_parents(self):
        order = sport_order()
        assert order.children(Element("Sport")) == {
            Element("Ball Game"),
            Element("Biking"),
        }
        assert order.parents(Element("Basketball")) == {Element("Ball Game")}

    def test_descendants_reflexive_transitive(self):
        order = sport_order()
        assert order.descendants(Element("Ball Game")) == {
            Element("Ball Game"),
            Element("Basketball"),
            Element("Baseball"),
        }

    def test_ancestors(self):
        order = sport_order()
        assert order.ancestors(Element("Basketball")) == {
            Element("Basketball"),
            Element("Ball Game"),
            Element("Sport"),
            Element("Activity"),
        }

    def test_strict_variants_exclude_self(self):
        order = sport_order()
        assert Element("Sport") not in order.strict_descendants(Element("Sport"))
        assert Element("Sport") not in order.strict_ancestors(Element("Sport"))

    def test_roots_and_leaves(self):
        order = sport_order()
        assert order.roots() == {Element("Activity")}
        assert order.leaves() == {
            Element("Basketball"),
            Element("Baseball"),
            Element("Biking"),
        }

    def test_depth_and_height(self):
        order = sport_order()
        assert order.depth(Element("Activity")) == 0
        assert order.depth(Element("Basketball")) == 3
        assert order.height() == 3

    def test_depth_uses_longest_chain(self):
        order = PartialOrder()
        order.add_edge(Element("A"), Element("B"))
        order.add_edge(Element("B"), Element("C"))
        order.add_edge(Element("A"), Element("C"))  # redundant shortcut edge
        assert order.depth(Element("C")) == 2

    def test_minimal_generalization_steps(self):
        order = sport_order()
        assert order.minimal_generalization_steps(
            Element("Sport"), Element("Basketball")
        ) == 2
        assert order.minimal_generalization_steps(
            Element("Sport"), Element("Sport")
        ) == 0

    def test_minimal_generalization_steps_rejects_unrelated(self):
        order = sport_order()
        with pytest.raises(ValueError):
            order.minimal_generalization_steps(
                Element("Biking"), Element("Basketball")
            )

    def test_caches_invalidate_on_new_edge(self):
        order = sport_order()
        assert Element("Skiing") not in order.descendants(Element("Sport"))
        order.add_edge(Element("Sport"), Element("Skiing"))
        assert Element("Skiing") in order.descendants(Element("Sport"))

    def test_edges_iteration(self):
        order = sport_order()
        assert (Element("Sport"), Element("Biking")) in set(order.edges())


class TestClosureStats:
    def test_shape_summary(self):
        order = sport_order()
        terms, height, avg_closure = order.closure_stats()
        assert terms == 6
        # Activity -> Sport -> Ball Game -> Basketball = 3 edges deep
        assert height == 3
        # closure sizes: Activity 6, Sport 5, Ball Game 3, leaves 1 each
        assert avg_closure == pytest.approx((6 + 5 + 3 + 1 + 1 + 1) / 6)

    def test_memoized_until_mutation(self):
        order = sport_order()
        first = order.closure_stats()
        assert order.closure_stats() is first or order.closure_stats() == first
        order.add_edge(Element("Sport"), Element("Skiing"))
        terms, _, _ = order.closure_stats()
        assert terms == 7

    def test_empty_order(self):
        assert PartialOrder().closure_stats() == (0, 0, 0.0)


class TestChainPartition:
    def test_covers_every_term_exactly_once(self):
        order = sport_order()
        partition = order.chain_partition()
        assert set(partition) == set(order.terms())

    def test_chains_are_paths_down_the_order(self):
        order = sport_order()
        partition = order.chain_partition()
        # group terms by chain and check consecutive positions specialize
        chains = {}
        for term, (chain_id, position) in partition.items():
            chains.setdefault(chain_id, {})[position] = term
        for members in chains.values():
            assert sorted(members) == list(range(len(members)))
            for position in range(len(members) - 1):
                assert order.leq(members[position], members[position + 1])

    def test_deterministic_across_instances(self):
        assert sport_order().chain_partition() == sport_order().chain_partition()

    def test_invalidated_by_mutation(self):
        order = sport_order()
        before = order.chain_partition()
        order.add_edge(Element("Biking"), Element("Mountain Biking"))
        after = order.chain_partition()
        assert Element("Mountain Biking") in after
        assert Element("Mountain Biking") not in before
