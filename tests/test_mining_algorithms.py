"""Tests for the vertical algorithm and the horizontal/naive baselines."""

import random

import pytest

from repro.assignments import ExplicitDAG
from repro.mining import (
    brute_force_msps,
    downward_closed,
    find_minimal_unclassified,
    horizontal_mine,
    maximal_nodes,
    minimal_nodes,
    naive_mine,
    negative_border,
    vertical_mine,
)
from repro.mining.state import ClassificationState
from repro.synth import generate_dag, place_msps


def make_oracle(significant):
    return lambda node: 1.0 if node in significant else 0.0


@pytest.fixture()
def small_dag() -> ExplicitDAG:
    dag = ExplicitDAG()
    edges = [
        (0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (2, 5),
        (3, 6), (4, 6), (4, 7), (5, 7), (6, 8), (7, 9),
    ]
    for a, b in edges:
        dag.add_edge(a, b)
    return dag


class TestMspUtilities:
    def test_maximal_minimal(self, small_dag):
        nodes = [0, 1, 3, 4]
        assert set(maximal_nodes(nodes, small_dag.leq)) == {3, 4}
        assert set(minimal_nodes(nodes, small_dag.leq)) == {0}

    def test_brute_force_msps(self, small_dag):
        significant = {0, 1, 2, 3, 4}
        assert set(brute_force_msps(small_dag, lambda n: n in significant)) == {3, 4}

    def test_downward_closed_detects_violation(self, small_dag):
        assert downward_closed(small_dag, lambda n: n in {0, 1, 3})
        assert not downward_closed(small_dag, lambda n: n in {3})  # 1, 0 missing

    def test_negative_border(self, small_dag):
        significant = {0, 1, 2, 3, 4}
        border = set(negative_border(small_dag, lambda n: n in significant))
        # minimal insignificant: 5 (child of significant 2) and 6 (children
        # of significant 3, 4); 7 is above the insignificant 5, not minimal
        assert border == {5, 6}


class TestVertical:
    def test_recovers_msps(self, small_dag):
        significant = {0, 1, 2, 3, 4}
        result = vertical_mine(small_dag, make_oracle(significant), 0.5)
        assert set(result.msps) == {3, 4}

    def test_nothing_significant(self, small_dag):
        result = vertical_mine(small_dag, make_oracle(set()), 0.5)
        assert result.msps == []
        assert result.questions == 1  # asking the root settles everything

    def test_everything_significant(self, small_dag):
        significant = set(range(10))
        result = vertical_mine(small_dag, make_oracle(significant), 0.5)
        assert set(result.msps) == {8, 9}

    def test_never_asks_classified(self, small_dag):
        asked = []

        def oracle(node):
            asked.append(node)
            return 1.0 if node in {0, 1, 2, 3, 4} else 0.0

        vertical_mine(small_dag, oracle, 0.5)
        assert len(asked) == len(set(asked)), "a node was asked twice"

    def test_lower_bound_msp_plus_border(self, small_dag):
        significant = {0, 1, 2, 3, 4}
        result = vertical_mine(small_dag, make_oracle(significant), 0.5)
        msps = set(brute_force_msps(small_dag, lambda n: n in significant))
        border = set(negative_border(small_dag, lambda n: n in significant))
        assert result.questions >= len(msps | border) - 1

    def test_max_questions_cutoff(self, small_dag):
        result = vertical_mine(
            small_dag, make_oracle({0, 1, 2, 3, 4}), 0.5, max_questions=2
        )
        assert result.questions <= 2

    def test_trace_monotone(self, small_dag):
        result = vertical_mine(small_dag, make_oracle({0, 1, 2, 3, 4}), 0.5)
        questions = [p.questions for p in result.trace.points]
        assert questions == sorted(questions)
        msps_found = [p.msps_found for p in result.trace.points]
        assert msps_found == sorted(msps_found)
        assert msps_found[-1] == 2

    def test_specialization_oracle_reduces_questions(self):
        dag = generate_dag(width=120, depth=5, seed=3)
        planted = place_msps(dag, 6, valid_only=True, seed=3)

        def spec(node, candidates):
            for candidate in candidates:
                if planted.is_significant(candidate):
                    return candidate
            return None

        plain = vertical_mine(dag, planted.support, 0.5, rng=random.Random(1))
        helped = vertical_mine(
            dag,
            planted.support,
            0.5,
            specialization_oracle=spec,
            specialization_ratio=1.0,
            rng=random.Random(1),
        )
        assert set(helped.msps) == set(plain.msps)
        assert helped.questions <= plain.questions

    def test_prune_oracle_classifies_for_free(self, small_dag):
        significant = {0, 1, 2, 3, 4}

        def prune(node):
            return [s for s in small_dag.successors(node) if s not in significant]

        pruned = vertical_mine(
            small_dag,
            make_oracle(significant),
            0.5,
            prune_oracle=prune,
            pruning_ratio=1.0,
            rng=random.Random(0),
        )
        plain = vertical_mine(small_dag, make_oracle(significant), 0.5)
        assert set(pruned.msps) == set(plain.msps)
        assert pruned.questions <= plain.questions


class TestFindMinimalUnclassified:
    def test_returns_root_first(self, small_dag):
        state = ClassificationState(small_dag)
        assert find_minimal_unclassified(small_dag, state) == 0

    def test_skips_insignificant_subtrees(self, small_dag):
        state = ClassificationState(small_dag)
        state.mark_significant(0)
        state.mark_insignificant(1)
        found = find_minimal_unclassified(small_dag, state)
        assert found == 2

    def test_none_when_complete(self, small_dag):
        state = ClassificationState(small_dag)
        state.mark_insignificant(0)
        assert find_minimal_unclassified(small_dag, state) is None


class TestBaselines:
    def test_horizontal_recovers_msps(self, small_dag):
        significant = {0, 1, 2, 3, 4}
        result = horizontal_mine(small_dag, make_oracle(significant), 0.5)
        assert set(result.msps) == {3, 4}

    def test_naive_recovers_msps(self, small_dag):
        significant = {0, 1, 2, 3, 4}
        result = naive_mine(
            small_dag, make_oracle(significant), 0.5, rng=random.Random(5)
        )
        assert set(result.msps) == {3, 4}

    def test_all_algorithms_agree_on_random_dags(self):
        for seed in range(4):
            dag = generate_dag(width=60, depth=4, seed=seed, valid_fraction=1.0)
            planted = place_msps(dag, 4, valid_only=True, seed=seed)
            expected = set(
                brute_force_msps(dag, planted.is_significant, valid_only=False)
            )
            for algorithm in (vertical_mine, horizontal_mine, naive_mine):
                result = algorithm(dag, planted.support, 0.5)
                assert set(result.msps) == expected, algorithm.__name__

    def test_vertical_beats_naive_on_average_when_msps_sparse(self):
        # one deep MSP among many wide siblings: a single naive run can get
        # lucky, but on average the top-down descent wins (the Figure 5
        # trend at low MSP density)
        dag = ExplicitDAG()
        depth = 12
        for level in range(depth):
            dag.add_edge(level, level + 1)
            for branch in range(4):
                dag.add_edge(level, 100 + 10 * level + branch)
        significant = set(range(depth + 1))
        vertical = vertical_mine(dag, make_oracle(significant), 0.5)
        naive_costs = []
        for seed in range(10):
            naive = naive_mine(
                dag, make_oracle(significant), 0.5, rng=random.Random(seed)
            )
            naive_costs.append(naive.trace.questions_to_reach_msps(1.0, 1))
        naive_avg = sum(naive_costs) / len(naive_costs)
        assert vertical.trace.questions_to_reach_msps(1.0, 1) <= naive_avg

    def test_horizontal_never_asks_unsupported_candidates(self, small_dag):
        asked = []

        def oracle(node):
            asked.append(node)
            return 1.0 if node in {0, 1, 3} else 0.0

        horizontal_mine(small_dag, oracle, 0.5)
        # node 6 has predecessors 3 (significant) and 4 (insignificant);
        # Apriori-style gating must not ask it
        assert 6 not in asked
