"""Unit tests for the Turtle-like ontology serialization."""

import pytest

from repro.ontology import Fact, TurtleSyntaxError, dumps, loads
from repro.vocabulary import Element, Relation

SAMPLE = """
# a comment line
<Central Park> instanceOf Park .
<Central Park> inside NYC .
Park subClassOf Outdoor .
@relorder nearBy <= inside .
<Central Park> hasLabel "child-friendly" .
"""


class TestLoads:
    def test_parses_facts(self):
        onto = loads(SAMPLE)
        assert ("Central Park", "inside", "NYC") in onto
        assert ("Park", "subClassOf", "Outdoor") in onto

    def test_multiword_names(self):
        onto = loads(SAMPLE)
        assert onto.vocabulary.has_element("Central Park")

    def test_relorder(self):
        onto = loads(SAMPLE)
        assert onto.vocabulary.leq(Relation("nearBy"), Relation("inside"))

    def test_labels(self):
        onto = loads(SAMPLE)
        assert onto.has_label("Central Park", "child-friendly")

    def test_comments_and_blanks_ignored(self):
        onto = loads("# only a comment\n\n")
        assert len(onto) == 0

    def test_taxonomy_syncs_order(self):
        onto = loads(SAMPLE)
        assert onto.vocabulary.leq(Element("Outdoor"), Element("Park"))

    def test_trailing_dot_optional(self):
        onto = loads("A r B")
        assert ("A", "r", "B") in onto


class TestErrors:
    def test_wrong_arity(self):
        with pytest.raises(TurtleSyntaxError):
            loads("A r")

    def test_string_in_subject(self):
        with pytest.raises(TurtleSyntaxError):
            loads('"label" r B .')

    def test_string_object_without_haslabel(self):
        with pytest.raises(TurtleSyntaxError):
            loads('A r "oops" .')

    def test_haslabel_needs_string(self):
        with pytest.raises(TurtleSyntaxError):
            loads("A hasLabel B .")

    def test_bad_relorder(self):
        with pytest.raises(TurtleSyntaxError):
            loads("@relorder nearBy inside .")

    def test_error_reports_line_number(self):
        with pytest.raises(TurtleSyntaxError) as excinfo:
            loads("A r B .\nbroken line here extra tokens .")
        assert excinfo.value.line_no == 2


class TestRoundTrip:
    def test_dumps_loads_round_trip(self):
        original = loads(SAMPLE)
        restored = loads(dumps(original))
        assert set(restored) == set(original)
        assert restored.labels("Central Park") == original.labels("Central Park")
        assert restored.vocabulary.leq(Relation("nearBy"), Relation("inside"))

    def test_dump_load_file(self, tmp_path):
        from repro.ontology import dump, load

        original = loads(SAMPLE)
        path = tmp_path / "onto.ttl"
        dump(original, path)
        assert set(load(path)) == set(original)
