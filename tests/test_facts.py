"""Unit tests for facts and fact-sets (Definitions 2.2 and 2.5)."""

import pytest

from repro.ontology.facts import Fact, FactSet, as_fact, fact_set, parse_fact_set
from repro.vocabulary import Vocabulary
from repro.vocabulary.terms import ANY_ELEMENT, ANY_RELATION_WILDCARD, Element


@pytest.fixture()
def vocab() -> Vocabulary:
    v = Vocabulary()
    v.specialize_element("Activity", "Sport")
    v.specialize_element("Sport", "Biking")
    v.specialize_element("Sport", "Ball Game")
    v.specialize_element("Ball Game", "Basketball")
    v.specialize_element("Place", "Park")
    v.specialize_element("Park", "Central Park")
    v.specialize_relation("nearBy", "inside")
    v.add_relation("doAt")
    return v


class TestFact:
    def test_construction_from_strings(self):
        f = Fact("Biking", "doAt", "Central Park")
        assert f.subject == Element("Biking")
        assert str(f) == "Biking doAt Central Park"

    def test_equality_and_hash(self):
        a = Fact("A", "r", "B")
        assert a == Fact("A", "r", "B")
        assert hash(a) == hash(Fact("A", "r", "B"))
        assert a != Fact("A", "r", "C")

    def test_as_fact_from_tuple(self):
        assert as_fact(("A", "r", "B")) == Fact("A", "r", "B")

    def test_as_fact_rejects_garbage(self):
        with pytest.raises(TypeError):
            as_fact("not a fact")

    def test_leq_componentwise(self, vocab):
        general = Fact("Sport", "doAt", "Park")
        specific = Fact("Biking", "doAt", "Central Park")
        assert general.leq(specific, vocab)
        assert not specific.leq(general, vocab)

    def test_leq_relation_order(self, vocab):
        # Example 2.6: <Central Park, nearBy, NYC> is *more specific* info
        # than <Central Park, inside, NYC>?  No: f3 = inside-fact, f4 =
        # nearBy-fact, and f3 ≤ f4 requires inside ≥ nearBy.
        near = Fact("Central Park", "nearBy", "NYC")
        inside = Fact("Central Park", "inside", "NYC")
        assert near.leq(inside, vocab)
        assert not inside.leq(near, vocab)

    def test_leq_reflexive(self, vocab):
        f = Fact("Biking", "doAt", "Central Park")
        assert f.leq(f, vocab)

    def test_wildcard_subject_matches_anything(self, vocab):
        wild = Fact(ANY_ELEMENT, "doAt", "Central Park")
        concrete = Fact("Biking", "doAt", "Central Park")
        assert wild.leq(concrete, vocab)
        assert not concrete.leq(wild, vocab)

    def test_wildcard_relation_matches_anything(self, vocab):
        wild = Fact("Biking", ANY_RELATION_WILDCARD, "Central Park")
        concrete = Fact("Biking", "doAt", "Central Park")
        assert wild.leq(concrete, vocab)

    def test_sorting_deterministic(self):
        facts = sorted([Fact("B", "r", "X"), Fact("A", "r", "X")])
        assert facts[0].subject == Element("A")


class TestFactSet:
    def test_leq_every_fact_needs_witness(self, vocab):
        small = fact_set(("Sport", "doAt", "Park"))
        big = fact_set(("Biking", "doAt", "Central Park"), ("A", "doAt", "B"))
        assert small.leq(big, vocab)
        assert not big.leq(small, vocab)

    def test_empty_set_leq_everything(self, vocab):
        assert FactSet().leq(fact_set(("A", "r", "B")), vocab)

    def test_implies_transaction_reading(self, vocab):
        transaction = fact_set(("Basketball", "doAt", "Central Park"))
        query = fact_set(("Sport", "doAt", "Central Park"))
        assert transaction.implies(query, vocab)
        assert not transaction.implies(
            fact_set(("Biking", "doAt", "Central Park")), vocab
        )

    def test_implies_fact(self, vocab):
        transaction = fact_set(("Basketball", "doAt", "Central Park"))
        assert transaction.implies_fact(("Ball Game", "doAt", "Park"), vocab)
        assert not transaction.implies_fact(("Biking", "doAt", "Park"), vocab)

    def test_union_and_contains(self):
        a = fact_set(("A", "r", "B"))
        b = fact_set(("C", "r", "D"))
        union = a | b
        assert len(union) == 2
        assert ("A", "r", "B") in union

    def test_equality_with_raw_sets(self):
        assert fact_set(("A", "r", "B")) == {Fact("A", "r", "B")}

    def test_hashable(self):
        assert {fact_set(("A", "r", "B")), fact_set(("A", "r", "B"))}


class TestParseFactSet:
    def test_single_fact(self):
        fs = parse_fact_set("Biking doAt Central Park")
        assert fs == fact_set(("Biking", "doAt", "Central Park"))

    def test_multiple_facts_dotted(self):
        fs = parse_fact_set("Biking doAt Central Park. Falafel eatAt Maoz Veg")
        assert len(fs) == 2

    def test_multiword_subject_with_lowercase_words(self):
        fs = parse_fact_set("Feed a monkey doAt Bronx Zoo")
        assert fs == fact_set(("Feed a monkey", "doAt", "Bronx Zoo"))

    def test_known_relations_break_ties(self):
        fs = parse_fact_set("a b c", relations={"b"})
        assert fs == fact_set(("a", "b", "c"))

    def test_single_lowercase_inner_token_is_relation(self):
        assert parse_fact_set("a b c") == fact_set(("a", "b", "c"))

    def test_ambiguous_raises(self):
        with pytest.raises(ValueError):
            # two inner lowercase tokens, no relation hint
            parse_fact_set("a b c d")

    def test_empty_chunks_ignored(self):
        fs = parse_fact_set("Biking doAt Park. . ")
        assert len(fs) == 1
