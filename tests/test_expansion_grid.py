"""The coherent-witness-grid expansion test (Proposition 5.1 semantics).

A multi-valued assignment belongs to the expanded set ``A`` only if it is
dominated by a *combination* of valid assignments — which must agree on
every other variable.  A per-selection check is not enough; these tests pin
the difference down.
"""

import pytest

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.oassisql import parse_query
from repro.ontology import Fact, Ontology
from repro.vocabulary import Element

QUERY = """
SELECT FACT-SETS
WHERE
  $x subClassOf* Food .
  $y subClassOf* Drink .
  $x goesWith $y
SATISFYING
  $x+ servedWith $y
WITH SUPPORT = 0.5
"""


@pytest.fixture()
def space():
    """Foods A1, A2; drinks B1 with child B1c.

    Valid (goesWith) pairs: (A1, B1) and (A2, B1c) — they never share a
    drink value, so no combination with two foods exists.
    """
    ontology = Ontology()
    ontology.add(Fact("A1", "subClassOf", "Food"))
    ontology.add(Fact("A2", "subClassOf", "Food"))
    ontology.add(Fact("B1", "subClassOf", "Drink"))
    ontology.add(Fact("B1c", "subClassOf", "B1"))
    ontology.add(Fact("A1", "goesWith", "B1"))
    ontology.add(Fact("A2", "goesWith", "B1c"))
    ontology.vocabulary.add_relation("servedWith")
    query = parse_query(QUERY)
    return QueryAssignmentSpace(ontology, query, max_values_per_var=2)


def E(name):
    return Element(name)


class TestWitnessGrid:
    def test_single_valued_membership(self, space):
        vocab = space.vocabulary
        assert space.in_expansion(
            Assignment.make(vocab, {"x": {E("A1")}, "y": {E("B1")}})
        )
        assert space.in_expansion(
            Assignment.make(vocab, {"x": {E("A2")}, "y": {E("B1")}})
        )  # generalizes (A2, B1c)

    def test_single_valued_non_membership(self, space):
        vocab = space.vocabulary
        # (A1, B1c) is not dominated by any valid pair: A1 only goes with B1
        assert not space.in_expansion(
            Assignment.make(vocab, {"x": {E("A1")}, "y": {E("B1c")}})
        )

    def test_multi_value_requires_coherent_combination(self, space):
        vocab = space.vocabulary
        # every selection of ({A1, A2}, B1) is dominated by SOME valid pair,
        # but no single combination covers both foods with one drink value:
        # the assignment is NOT in the expansion
        node = Assignment.make(vocab, {"x": {E("A1"), E("A2")}, "y": {E("B1")}})
        assert not space.in_expansion(node)

    def test_multi_value_with_shared_partner(self, space):
        vocab = space.vocabulary
        # make a genuine combination possible and check the grid finds it
        space.ontology.add(Fact("A2", "goesWith", "B1"))
        fresh = QueryAssignmentSpace(
            space.ontology, space.query, max_values_per_var=2
        )
        node = Assignment.make(vocab, {"x": {E("A1"), E("A2")}, "y": {E("B1")}})
        assert fresh.in_expansion(node)
        assert fresh.is_valid(node)

    def test_traversal_never_generates_incoherent_combos(self, space):
        for node in space.all_nodes():
            assert space.in_expansion(node), node
