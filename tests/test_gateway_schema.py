"""The gateway wire schema: versioned DTOs, typed decode, fact triples."""

import pytest

from repro.gateway.schema import (
    SCHEMA_VERSION,
    ActivateRequest,
    AnswerRequest,
    AnswerResponse,
    DatasetList,
    ErrorResponse,
    JoinRequest,
    JoinResponse,
    QueryAccepted,
    QueryRequest,
    QuestionBatch,
    QuestionDTO,
    ResultResponse,
    SchemaError,
    SimulationSpec,
    check_version,
    facts_from_wire,
    facts_to_wire,
)
from repro.ontology.facts import Fact, FactSet


class TestVersioning:
    def test_every_dto_stamps_the_schema_version(self):
        assert JoinRequest("m0").to_wire()["v"] == SCHEMA_VERSION
        assert QueryRequest().to_wire()["v"] == SCHEMA_VERSION
        assert ErrorResponse("bad_request", "x").to_wire()["v"] == SCHEMA_VERSION

    def test_missing_version_is_rejected(self):
        with pytest.raises(SchemaError):
            check_version({"member_id": "m0"})

    def test_non_mapping_payload_is_rejected(self):
        with pytest.raises(SchemaError):
            check_version(["not", "a", "mapping"])

    def test_newer_versions_still_decode(self):
        # forward compatibility: a v2 peer's payload decodes as long as
        # the v1 fields are intact
        payload = JoinResponse("m0", "tok").to_wire()
        payload["v"] = SCHEMA_VERSION + 1
        payload["future_field"] = {"ignored": True}
        decoded = JoinResponse.from_wire(payload)
        assert decoded.member_id == "m0"
        assert decoded.token == "tok"

    def test_older_than_v1_is_rejected(self):
        payload = JoinRequest("m0").to_wire()
        payload["v"] = 0
        with pytest.raises(SchemaError):
            JoinRequest.from_wire(payload)


class TestTypedDecode:
    def test_round_trips(self):
        batch = QuestionBatch(
            questions=(
                QuestionDTO(
                    qid="q1",
                    session_id="s1",
                    text="Do you enjoy this?",
                    facts=(("a", "likes", "b"),),
                    deadline_s=4.5,
                    attempt=1,
                ),
            ),
            retry_after_s=0.0,
        )
        decoded = QuestionBatch.from_wire(batch.to_wire())
        assert decoded == batch
        result = ResultResponse(
            session_id="s1",
            state="completed",
            done=True,
            questions_asked=7,
            msps=("A1", "A2"),
            valid_msps=("A1",),
        )
        assert ResultResponse.from_wire(result.to_wire()) == result

    def test_wrong_type_names_the_field(self):
        payload = AnswerRequest("q1", 0.5).to_wire()
        payload["qid"] = 7
        with pytest.raises(SchemaError, match="qid"):
            AnswerRequest.from_wire(payload)

    def test_bool_is_not_an_int(self):
        payload = QueryRequest().to_wire()
        payload["sample_size"] = True
        with pytest.raises(SchemaError, match="sample_size"):
            QueryRequest.from_wire(payload)

    def test_query_request_validates_ranges(self):
        with pytest.raises(SchemaError):
            QueryRequest.from_wire(
                {"v": 1, "threshold": 1.5}
            )
        with pytest.raises(SchemaError):
            QueryRequest.from_wire({"v": 1, "sample_size": 0})

    def test_answer_support_may_be_null(self):
        payload = AnswerRequest("q1", None).to_wire()
        assert AnswerRequest.from_wire(payload).support is None
        assert AnswerResponse.from_wire(
            AnswerResponse("q1", "passed").to_wire()
        ).outcome == "passed"

    def test_dataset_list_and_activate(self):
        listing = DatasetList(datasets=("demo", "travel"), active=None)
        assert DatasetList.from_wire(listing.to_wire()) == listing
        assert ActivateRequest.from_wire(
            ActivateRequest("demo").to_wire()
        ).name == "demo"

    def test_query_accepted_round_trip(self):
        accepted = QueryAccepted(session_id="g1", query="SELECT ...")
        assert QueryAccepted.from_wire(accepted.to_wire()) == accepted


class TestFactTriples:
    def test_round_trip_preserves_the_fact_set(self):
        facts = FactSet(
            [Fact("child", "doAt", "park"), Fact("adult", "eatAt", "cafe")]
        )
        triples = facts_to_wire(facts)
        assert triples == tuple(sorted(triples))  # canonical order
        rebuilt = facts_from_wire(triples)
        assert rebuilt == facts

    def test_triples_are_plain_strings(self):
        facts = FactSet([Fact("a", "r", "b")])
        ((s, r, o),) = facts_to_wire(facts)
        assert (s, r, o) == ("a", "r", "b")
        assert all(isinstance(part, str) for part in (s, r, o))


class TestSimulationSpec:
    def test_overrides_only_carries_present_fields(self):
        spec = SimulationSpec.from_wire(
            {"v": 1, "domain": "demo", "sessions": 3, "verify": False}
        )
        assert spec.overrides() == {
            "domain": "demo",
            "sessions": 3,
            "verify": False,
        }

    def test_range_validation(self):
        with pytest.raises(SchemaError, match="sessions"):
            SimulationSpec.from_wire({"v": 1, "sessions": 0})
        with pytest.raises(SchemaError, match="question_timeout"):
            SimulationSpec.from_wire({"v": 1, "question_timeout": 0})
        with pytest.raises(SchemaError, match="seeds"):
            SimulationSpec.from_wire({"v": 1, "seeds": [1, "two"]})

    def test_seeds_decode_to_a_tuple(self):
        spec = SimulationSpec.from_wire({"v": 1, "seeds": [0, 1, 2]})
        assert spec.seeds == (0, 1, 2)
        assert spec.to_wire()["seeds"] == [0, 1, 2]
