"""Backoff and expiry edge cases: deadlines, attempt bounds, late answers.

Satellite coverage for the retry machinery that the fault-injection
harness (PR 5) leans on: the exact-deadline boundary, the attempt
counter hitting ``max_attempts`` exactly, and the timeout/answer race —
a question that expires while its answer is in flight must yield
``STALE`` exactly once, then be collectable again.
"""

import pytest

from repro import OassisEngine
from repro.datasets import running_example
from repro.engine import AnswerOutcome
from repro.service import ServiceConfig
from repro.service.simulation import DOMAINS


@pytest.fixture(scope="module")
def demo():
    return DOMAINS["demo"]()


@pytest.fixture(scope="module")
def engine(demo):
    return OassisEngine(demo.ontology)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


def make_manager(engine, clock, **options):
    options.setdefault("question_timeout", 10.0)
    options.setdefault("backoff_base", 1.0)
    return engine.session_manager(clock=clock, **options)


class TestQueueExpiryRaces:
    """QueueManager-level: expire_pending vs. a late answer."""

    def _queue(self, engine):
        return engine.queue_manager(
            running_example.FRAGMENT_QUERY, sample_size=1
        )

    def test_expire_unknown_member_is_empty(self, engine):
        qm = self._queue(engine)
        assert qm.expire_pending("ghost") == []

    def test_expire_unpending_assignment_is_empty(self, engine):
        qm = self._queue(engine)
        question = qm.next_question("u")
        qm.submit_support("u", 1.0, assignment=question.assignment)
        assert qm.expire_pending("u", question.assignment) == []

    def test_late_answer_is_stale_exactly_once(self, engine):
        qm = self._queue(engine)
        question = qm.next_question("u")
        node = question.assignment
        assert qm.expire_pending("u", node) == [node]
        # the member's answer arrives after the expiry won the race
        assert (
            qm.submit_support("u", 0.8, assignment=node)
            is AnswerOutcome.STALE
        )
        # the question is still collectable: re-delivered, then recorded
        again = qm.next_question("u")
        assert again.assignment == node
        assert (
            qm.submit_support("u", 0.8, assignment=node)
            is AnswerOutcome.RECORDED
        )
        # and only once: the node is answered, not re-asked
        follow_up = qm.next_question("u")
        assert follow_up is None or follow_up.assignment != node

    def test_answer_first_makes_expiry_a_noop(self, engine):
        qm = self._queue(engine)
        question = qm.next_question("u")
        node = question.assignment
        assert (
            qm.submit_support("u", 0.8, assignment=node)
            is AnswerOutcome.RECORDED
        )
        # the reaper lost the race: nothing pending, nothing to expire
        assert qm.expire_pending("u", node) == []
        follow_up = qm.next_question("u")
        assert follow_up is None or follow_up.assignment != node

    def test_mark_answered_suppresses_redelivery_after_expiry(self, engine):
        qm = self._queue(engine)
        question = qm.next_question("u")
        node = question.assignment
        qm.expire_pending("u", node)
        # resume path seeds the member's answer map while the node is
        # back on their stack: it must not be asked again
        qm.mark_answered("u", node, 0.8)
        follow_up = qm.next_question("u")
        assert follow_up is None or follow_up.assignment != node


class TestDeadlineBoundaries:
    """Service-level: the deadline comparison and config validation."""

    def test_zero_and_negative_timeouts_rejected(self):
        with pytest.raises(ValueError):
            ServiceConfig(question_timeout=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(question_timeout=-1.0)

    def test_question_overdue_at_exact_deadline(self, engine, demo, clock):
        manager = make_manager(engine, clock, question_timeout=10.0)
        manager.create_session(demo.query(0.4), session_id="q")
        manager.attach_member("a")
        [question] = manager.next_batch("a", k=1)
        assert question.deadline == pytest.approx(10.0)
        clock.advance(10.0 - 1e-9)
        assert manager.reap_expired() == []
        clock.advance(1e-9)
        reaped = manager.reap_expired()
        assert [q.assignment for q in reaped] == [question.assignment]

    def test_reap_with_no_in_flight_is_empty(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        manager.create_session(demo.query(0.4), session_id="q")
        manager.attach_member("a")
        assert manager.reap_expired() == []


class TestAttemptBound:
    """The attempt counter must exhaust exactly at ``max_attempts``."""

    def test_retry_below_bound_then_exhaust_at_bound(self, engine, demo, clock):
        manager = make_manager(
            engine, clock, max_attempts=2, question_timeout=10.0
        )
        manager.create_session(demo.query(0.4), session_id="q", sample_size=1)
        manager.attach_member("a")
        manager.attach_member("b")
        [first] = manager.next_batch("a", k=1)
        node = first.assignment
        assert first.attempt == 1

        # attempt 1 < max_attempts: requeued with backoff, not abandoned
        clock.advance(10.0)
        assert [q.assignment for q in manager.reap_expired()] == [node]
        assert manager.next_batch("a", k=1) == []  # inside backoff window
        clock.advance(1.5)  # backoff_base * 2**0 = 1.0
        [second] = manager.next_batch("a", k=1)
        assert second.assignment == node
        assert second.attempt == 2

        # attempt 2 == max_attempts: abandoned for `a`, not retried again
        clock.advance(10.0)
        assert [q.assignment for q in manager.reap_expired()] == [node]
        clock.advance(100.0)
        assert all(
            q.assignment != node for q in manager.next_batch("a", k=4)
        )

    def test_session_completes_via_other_member_after_exhaustion(
        self, engine, demo, clock
    ):
        manager = make_manager(
            engine, clock, max_attempts=1, question_timeout=10.0
        )
        session = manager.create_session(
            demo.query(0.4), session_id="q", sample_size=1
        )
        manager.attach_member("a")
        manager.attach_member("b")
        [doomed] = manager.next_batch("a", k=1)
        clock.advance(10.0)
        manager.reap_expired()  # attempt 1 == max_attempts: reassign

        members = {
            m.member_id: m for m in demo.build_crowd(size=2)
        }
        by_service_id = {"a": members["u0"], "b": members["u1"]}
        for _ in range(10_000):
            if manager.all_done():
                break
            progress = False
            for member_id in ("a", "b"):
                for question in manager.next_batch(member_id, k=4):
                    progress = True
                    answer = by_service_id[member_id].answer_concrete(
                        _concrete(question)
                    )
                    manager.submit(question, answer.support)
            if not progress:
                manager.reap_expired()
                clock.advance(1.0)
        assert manager.all_done()
        assert session.state.value == "completed"


def _concrete(question):
    from repro.crowd.questions import ConcreteQuestion

    return ConcreteQuestion(question.assignment, question.fact_set)
