"""Unit tests for the BGP parser."""

import pytest

from repro.sparql import (
    Blank,
    Concrete,
    ParseError,
    PathMod,
    StringLiteral,
    Var,
    parse_bgp,
)


class TestTriplePatterns:
    def test_simple_triple(self):
        bgp = parse_bgp("$x inside NYC")
        pattern = bgp.patterns[0]
        assert pattern.subject == Var("x")
        assert pattern.relation.term == Concrete("inside")
        assert pattern.obj == Concrete("NYC")

    def test_multiple_triples_dot_separated(self):
        bgp = parse_bgp("$x inside NYC . $x instanceOf Park .")
        assert len(bgp) == 2

    def test_trailing_dot_optional(self):
        assert len(parse_bgp("$x inside NYC . $y inside NYC")) == 2

    def test_path_star(self):
        bgp = parse_bgp("$w subClassOf* Attraction")
        assert bgp.patterns[0].relation.mod is PathMod.STAR

    def test_path_plus_and_opt(self):
        assert parse_bgp("$w subClassOf+ A").patterns[0].relation.mod is PathMod.PLUS
        assert parse_bgp("$w subClassOf? A").patterns[0].relation.mod is PathMod.OPT

    def test_relation_variable(self):
        bgp = parse_bgp("$x $p $y")
        assert bgp.patterns[0].relation.term == Var("p")

    def test_blank_nodes(self):
        bgp = parse_bgp("[] eatAt $z")
        assert isinstance(bgp.patterns[0].subject, Blank)

    def test_blanks_are_unique(self):
        bgp = parse_bgp("[] eatAt $z . [] doAt $x")
        first = bgp.patterns[0].subject
        second = bgp.patterns[1].subject
        assert first.as_var() != second.as_var()

    def test_string_literal_object(self):
        bgp = parse_bgp('$x hasLabel "child-friendly"')
        assert bgp.patterns[0].obj == StringLiteral("child-friendly")

    def test_multiword_names(self):
        bgp = parse_bgp("<Central Park> inside NYC")
        assert bgp.patterns[0].subject == Concrete("Central Park")

    def test_variables_first_occurrence_order(self):
        bgp = parse_bgp("$b r $a . $a r $c")
        assert [v.name for v in bgp.variables()] == ["b", "a", "c"]


class TestParseErrors:
    def test_string_in_subject_rejected(self):
        with pytest.raises(ParseError):
            parse_bgp('"label" r B')

    def test_missing_dot_between_triples(self):
        with pytest.raises(ParseError):
            parse_bgp("$x r $y $z r $w extra tokens here")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ParseError):
            parse_bgp("")

    def test_path_mod_on_variable_rejected(self):
        with pytest.raises(Exception):
            parse_bgp("$x $p* $y")

    def test_incomplete_triple(self):
        with pytest.raises(ParseError):
            parse_bgp("$x inside")
