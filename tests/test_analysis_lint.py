"""Fixture-based tests for the project-invariant linter.

Each rule gets a seeded violation (written under ``tmp_path`` with a
path that mimics the real ``repro/...`` layout, since the project rules
key on module suffixes) and a clean counterpart that must stay silent.
The merged source tree itself is also linted and must be clean.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import lint_file, main, run_lint
from repro.analysis.rules import ALL_RULES, RULES_BY_ID

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def lint(tmp_path, *rules):
    return run_lint([str(tmp_path)], rule_ids=sorted(rules) or None)


def rule_ids(result):
    return [finding.rule for finding in result.findings]


class TestHygieneRules:
    def test_bare_except_fires(self, tmp_path):
        write(tmp_path, "mod.py", "try:\n    pass\nexcept:\n    pass\n")
        result = lint(tmp_path, "bare-except")
        assert rule_ids(result) == ["bare-except"]
        assert result.findings[0].line == 3

    def test_typed_except_is_silent(self, tmp_path):
        write(tmp_path, "mod.py", "try:\n    pass\nexcept ValueError:\n    pass\n")
        assert lint(tmp_path, "bare-except").findings == []

    def test_mutable_default_literal_and_factory(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "from collections import defaultdict\n"
            "def f(a=[]):\n    return a\n"
            "def g(b=defaultdict(list)):\n    return b\n"
            "def h(c=None, *, d=()):\n    return c, d\n",
        )
        result = lint(tmp_path, "mutable-default")
        assert rule_ids(result) == ["mutable-default"] * 2

    def test_shadowed_builtin_variants(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f(id):\n    return id\n"
            "list = [1]\n"
            "for type in (1, 2):\n    pass\n",
        )
        result = lint(tmp_path, "shadowed-builtin")
        assert rule_ids(result) == ["shadowed-builtin"] * 3

    def test_class_attribute_does_not_shadow(self, tmp_path):
        # class-namespace bindings (like the rule classes' own `id`
        # attribute) are not shadowing
        write(tmp_path, "mod.py", "class Rule:\n    id = 'x'\n    def len(self):\n        return 0\n")
        assert lint(tmp_path, "shadowed-builtin").findings == []

    def test_unused_import_fires(self, tmp_path):
        write(tmp_path, "mod.py", "import json\nimport sys\nprint(sys.argv)\n")
        result = lint(tmp_path, "unused-import")
        assert rule_ids(result) == ["unused-import"]
        assert "json" in result.findings[0].message

    def test_string_annotation_counts_as_use(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from decimal import Decimal\n"
            "def f(x: \"Decimal\") -> None:\n    return None\n",
        )
        assert lint(tmp_path, "unused-import").findings == []

    def test_package_init_without_all_is_exempt(self, tmp_path):
        write(tmp_path, "pkg/__init__.py", "import json\n")
        assert lint(tmp_path, "unused-import").findings == []

    def test_package_init_with_all_is_checked(self, tmp_path):
        write(
            tmp_path,
            "pkg/__init__.py",
            "import json\nimport sys\n__all__ = [\"json\"]\n",
        )
        result = lint(tmp_path, "unused-import")
        assert rule_ids(result) == ["unused-import"]
        assert "sys" in result.findings[0].message

    def test_unreachable_code_fires(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "def f():\n    return 1\n    print('dead')\n",
        )
        result = lint(tmp_path, "unreachable-code")
        assert rule_ids(result) == ["unreachable-code"]
        assert result.findings[0].line == 3


class TestLockNestingRule:
    def test_nested_with_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/service/manager.py",
            "class SessionManager:\n"
            "    def bad(self, session):\n"
            "        with self._lock:\n"
            "            with session.lock:\n"
            "                pass\n",
        )
        result = lint(tmp_path, "lock-nesting")
        assert rule_ids(result) == ["lock-nesting"]
        assert "session lock acquired" in result.findings[0].message

    def test_session_call_under_manager_lock_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/service/manager.py",
            "class SessionManager:\n"
            "    def bad(self, session, member_id):\n"
            "        with self._lock:\n"
            "            return session.next_fresh(member_id, 1)\n",
        )
        result = lint(tmp_path, "lock-nesting")
        assert rule_ids(result) == ["lock-nesting"]
        assert "next_fresh" in result.findings[0].message

    def test_manager_call_under_session_lock_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/service/session.py",
            "class QuerySession:\n"
            "    def bad(self, manager, session):\n"
            "        with session.lock:\n"
            "            manager.reap_expired()\n",
        )
        result = lint(tmp_path, "lock-nesting")
        assert rule_ids(result) == ["lock-nesting"]
        assert "reap_expired" in result.findings[0].message

    def test_sequential_sections_are_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/service/manager.py",
            "class SessionManager:\n"
            "    def good(self, session, member_id):\n"
            "        with self._lock:\n"
            "            state = dict(self._dispatched)\n"
            "        return session.next_fresh(member_id, 1)\n",
        )
        assert lint(tmp_path, "lock-nesting").findings == []

    def test_nested_function_resets_held_lock(self, tmp_path):
        # a closure defined under the lock runs later, outside it
        write(
            tmp_path,
            "repro/service/manager.py",
            "class SessionManager:\n"
            "    def good(self, session):\n"
            "        with self._lock:\n"
            "            def later():\n"
            "                return session.msps()\n"
            "            self._callbacks.append(later)\n",
        )
        assert lint(tmp_path, "lock-nesting").findings == []

    def test_other_packages_are_out_of_scope(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/other.py",
            "def f(self, session):\n"
            "    with self._lock:\n"
            "        with session.lock:\n"
            "            pass\n",
        )
        assert lint(tmp_path, "lock-nesting").findings == []


class TestVersionStampRule:
    HEADER = "class PartialOrder:\n"

    def test_mutation_without_stamp_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/vocabulary/orders.py",
            self.HEADER
            + "    def add_edge(self, a, b):\n"
            "        self._children[a].add(b)\n",
        )
        result = lint(tmp_path, "version-stamp")
        assert rule_ids(result) == ["version-stamp"]
        assert "add_edge" in result.findings[0].message

    def test_touch_call_silences(self, tmp_path):
        write(
            tmp_path,
            "repro/vocabulary/orders.py",
            self.HEADER
            + "    def add_edge(self, a, b):\n"
            "        self._children[a].add(b)\n"
            "        self._invalidate()\n",
        )
        assert lint(tmp_path, "version-stamp").findings == []

    def test_version_assignment_silences(self, tmp_path):
        write(
            tmp_path,
            "repro/ontology/graph.py",
            "class Ontology:\n"
            "    def add(self, fact):\n"
            "        self._facts.add(fact)\n"
            "        self.version += 1\n",
        )
        assert lint(tmp_path, "version-stamp").findings == []

    def test_ontology_mutation_without_stamp_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/ontology/graph.py",
            "class Ontology:\n"
            "    def add(self, fact):\n"
            "        self._facts.add(fact)\n",
        )
        assert rule_ids(lint(tmp_path, "version-stamp")) == ["version-stamp"]

    def test_copy_into_fresh_object_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/vocabulary/orders.py",
            self.HEADER
            + "    def copy(self):\n"
            "        dup = PartialOrder()\n"
            "        dup._children.update(self._children)\n"
            "        return dup\n",
        )
        assert lint(tmp_path, "version-stamp").findings == []


class TestCacheGuardRule:
    def test_public_method_without_guard_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/sparql/engine.py",
            "class SparqlEngine:\n"
            "    def solutions(self, query):\n"
            "        return self._memo[query]\n",
        )
        result = lint(tmp_path, "cache-guard")
        assert rule_ids(result) == ["cache-guard"]
        assert "solutions" in result.findings[0].message

    def test_guard_call_silences(self, tmp_path):
        write(
            tmp_path,
            "repro/sparql/engine.py",
            "class SparqlEngine:\n"
            "    def solutions(self, query):\n"
            "        self._check_caches()\n"
            "        return self._memo[query]\n",
        )
        assert lint(tmp_path, "cache-guard").findings == []

    def test_private_methods_are_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/sparql/engine.py",
            "class SparqlEngine:\n"
            "    def _lookup(self, query):\n"
            "        return self._memo[query]\n",
        )
        assert lint(tmp_path, "cache-guard").findings == []


class TestTracerNameRule:
    def test_unregistered_counter_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/mod.py",
            "from repro.observability import count\n"
            "count('mining.not.a.registered.name')\n",
        )
        result = lint(tmp_path, "tracer-name")
        assert rule_ids(result) == ["tracer-name"]

    def test_registered_names_are_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/mod.py",
            "from repro.observability import count, span\n"
            "count('cache.hits')\n"
            "with span('mine.vertical'):\n"
            "    pass\n",
        )
        assert lint(tmp_path, "tracer-name").findings == []

    def test_str_count_is_not_an_instrumentation_call(self, tmp_path):
        write(tmp_path, "mod.py", "n = 'a.b.c'.count('.')\n")
        assert lint(tmp_path, "tracer-name").findings == []

    def test_unregistered_span_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/engine/mod.py",
            "from repro.observability import span\n"
            "with span('engine.bogus.phase'):\n"
            "    pass\n",
        )
        assert rule_ids(lint(tmp_path, "tracer-name")) == ["tracer-name"]

    def test_unregistered_histogram_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "from repro.observability import observe\n"
            "observe('gateway.latency.bogus', 0.1)\n",
        )
        assert rule_ids(lint(tmp_path, "tracer-name")) == ["tracer-name"]

    def test_registered_histogram_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "from repro.observability import observe\n"
            "observe('gateway.latency.next', 0.1)\n",
        )
        assert lint(tmp_path, "tracer-name").findings == []

    def test_bucket_observe_with_float_arg_is_silent(self, tmp_path):
        # Histogram.observe(seconds) takes a float, not a name
        write(tmp_path, "mod.py", "histogram.observe(0.25)\n")
        assert lint(tmp_path, "tracer-name").findings == []


class TestShimCallerRule:
    def test_importing_shim_helper_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/mod.py",
            "from repro.engine.config import warn_deprecated\n"
            "warn_deprecated('k', 'm')\n",
        )
        result = lint(tmp_path, "shim-caller")
        assert rule_ids(result) == ["shim-caller"] * 2

    def test_legacy_engine_kwargs_fire(self, tmp_path):
        write(
            tmp_path,
            "repro/experiments/mod.py",
            "engine = OassisEngine(ontology, max_values_per_var=2)\n",
        )
        result = lint(tmp_path, "shim-caller")
        assert rule_ids(result) == ["shim-caller"]
        assert "EngineConfig" in result.findings[0].message

    def test_legacy_positional_tail_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/experiments/mod.py",
            "manager = engine.queue_manager(query, 2)\n",
        )
        result = lint(tmp_path, "shim-caller")
        assert rule_ids(result) == ["shim-caller"]
        assert "queue_manager" in result.findings[0].message

    def test_modern_calls_are_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/experiments/mod.py",
            "engine = OassisEngine(ontology, config=EngineConfig())\n"
            "manager = engine.queue_manager(query, sample_size=2)\n"
            "result = engine.execute(query, crowd)\n",
        )
        assert lint(tmp_path, "shim-caller").findings == []

    def test_shim_home_modules_are_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/engine/engine.py",
            "from .config import warn_deprecated\n"
            "warn_deprecated('k', 'm')\n",
        )
        assert lint(tmp_path, "shim-caller").findings == []

    def test_api_facade_is_a_shim_home(self, tmp_path):
        # repro.api hosts the PR-8 legacy shims, so its warn_deprecated
        # calls are legitimate
        write(
            tmp_path,
            "repro/api/__init__.py",
            "from ..engine.config import warn_deprecated\n"
            "warn_deprecated('k', 'm')\n",
        )
        assert lint(tmp_path, "shim-caller").findings == []


class TestAsyncBlockingRule:
    def test_time_sleep_in_async_gateway_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n",
        )
        result = lint(tmp_path, "async-blocking-io")
        assert rule_ids(result) == ["async-blocking-io"]
        assert "time.sleep" in result.findings[0].message

    def test_open_in_async_gateway_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "async def handler(path):\n"
            "    with open(path) as handle:\n"
            "        return handle.read()\n",
        )
        assert rule_ids(lint(tmp_path, "async-blocking-io")) == [
            "async-blocking-io"
        ]

    def test_asyncio_sleep_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "import asyncio\n"
            "async def handler():\n"
            "    await asyncio.sleep(0.1)\n",
        )
        assert lint(tmp_path, "async-blocking-io").findings == []

    def test_sync_function_in_gateway_is_silent(self, tmp_path):
        # client threads are allowed to block; only async defs share
        # the event loop
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "import time\n"
            "def poll():\n"
            "    time.sleep(0.1)\n",
        )
        assert lint(tmp_path, "async-blocking-io").findings == []

    def test_async_def_outside_gateway_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/mod.py",
            "import time\n"
            "async def handler():\n"
            "    time.sleep(0.1)\n",
        )
        assert lint(tmp_path, "async-blocking-io").findings == []

    def test_nested_async_defs_report_once(self, tmp_path):
        write(
            tmp_path,
            "repro/gateway/mod.py",
            "import time\n"
            "async def outer():\n"
            "    async def inner():\n"
            "        time.sleep(0.1)\n"
            "    await inner()\n",
        )
        assert rule_ids(lint(tmp_path, "async-blocking-io")) == [
            "async-blocking-io"
        ]


class TestDeterminismRules:
    def test_global_random_fires_in_mining(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/mod.py",
            "import random\nx = random.random()\n",
        )
        result = lint(tmp_path, "unseeded-random")
        assert rule_ids(result) == ["unseeded-random"]

    def test_from_import_of_global_rng_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/crowd/simulation.py",
            "from random import shuffle\n",
        )
        assert rule_ids(lint(tmp_path, "unseeded-random")) == ["unseeded-random"]

    def test_seeded_instance_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/mining/mod.py",
            "import random\nrng = random.Random(0)\nx = rng.random()\n",
        )
        assert lint(tmp_path, "unseeded-random").findings == []

    def test_global_random_outside_core_is_silent(self, tmp_path):
        write(tmp_path, "repro/cli.py", "import random\nx = random.random()\n")
        assert lint(tmp_path, "unseeded-random").findings == []

    def test_wall_clock_fires_in_mining(self, tmp_path):
        write(tmp_path, "repro/mining/mod.py", "import time\nt = time.time()\n")
        assert rule_ids(lint(tmp_path, "wall-clock")) == ["wall-clock"]

    def test_wall_clock_outside_core_is_silent(self, tmp_path):
        write(tmp_path, "repro/service/mod.py", "import time\nt = time.time()\n")
        assert lint(tmp_path, "wall-clock").findings == []


class TestForkUnsafeStateRule:
    def test_module_level_lock_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/service/shard/mod.py",
            "import threading\n_LOCK = threading.Lock()\n",
        )
        result = lint(tmp_path, "fork-unsafe-state")
        assert rule_ids(result) == ["fork-unsafe-state"]
        assert "Lock()" in result.findings[0].message

    def test_module_level_rng_and_thread_local_fire(self, tmp_path):
        write(
            tmp_path,
            "repro/crowd/mod.py",
            "import random\nimport threading\n"
            "RNG = random.Random(0)\n"
            "_STATE = threading.local()\n",
        )
        result = lint(tmp_path, "fork-unsafe-state")
        assert rule_ids(result) == ["fork-unsafe-state"] * 2

    def test_named_lock_factory_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/engine/mod.py",
            "from repro.analysis.lockcheck import named_lock\n"
            "_GUARD = named_lock('engine.global')\n",
        )
        assert rule_ids(lint(tmp_path, "fork-unsafe-state")) == [
            "fork-unsafe-state"
        ]

    def test_annotated_assignment_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/service/mod.py",
            "import threading\n_LOCK: threading.Lock = threading.Lock()\n",
        )
        assert rule_ids(lint(tmp_path, "fork-unsafe-state")) == [
            "fork-unsafe-state"
        ]

    def test_class_level_lock_fires(self, tmp_path):
        write(
            tmp_path,
            "repro/service/mod.py",
            "import threading\n"
            "class Registry:\n"
            "    lock = threading.Lock()\n",
        )
        result = lint(tmp_path, "fork-unsafe-state")
        assert rule_ids(result) == ["fork-unsafe-state"]
        assert "__getstate__" in result.findings[0].message

    def test_getstate_class_is_exempt(self, tmp_path):
        write(
            tmp_path,
            "repro/service/mod.py",
            "import threading\n"
            "class Cache:\n"
            "    lock = threading.Lock()\n"
            "    def __getstate__(self):\n"
            "        return {}\n",
        )
        assert lint(tmp_path, "fork-unsafe-state").findings == []

    def test_instance_state_in_init_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/service/mod.py",
            "import threading\n"
            "class Cache:\n"
            "    def __init__(self):\n"
            "        self._lock = threading.Lock()\n",
        )
        assert lint(tmp_path, "fork-unsafe-state").findings == []

    def test_factory_function_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/crowd/mod.py",
            "import random\n"
            "def fresh_rng(seed):\n"
            "    return random.Random(seed)\n",
        )
        assert lint(tmp_path, "fork-unsafe-state").findings == []

    def test_outside_shard_imported_prefixes_is_silent(self, tmp_path):
        write(
            tmp_path,
            "repro/analysis/mod.py",
            "import threading\n_LOCK = threading.Lock()\n",
        )
        assert lint(tmp_path, "fork-unsafe-state").findings == []


class TestSuppressions:
    def test_line_suppression(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "try:\n    pass\nexcept:  # repro-lint: disable=bare-except\n    pass\n",
        )
        result = lint(tmp_path, "bare-except")
        assert result.findings == []
        assert result.suppressed == 1

    def test_line_suppression_of_other_rule_does_not_apply(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "try:\n    pass\nexcept:  # repro-lint: disable=wall-clock\n    pass\n",
        )
        result = lint(tmp_path, "bare-except")
        assert rule_ids(result) == ["bare-except"]

    def test_disable_all_on_line(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "import json  # repro-lint: disable=all\n",
        )
        result = lint(tmp_path, "unused-import")
        assert result.findings == []
        assert result.suppressed == 1

    def test_file_level_suppression(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "# repro-lint: disable-file=unused-import\nimport json\nimport sys\n",
        )
        result = lint(tmp_path, "unused-import")
        assert result.findings == []
        assert result.suppressed == 2


class TestDriver:
    def test_parse_error_is_reported_not_raised(self, tmp_path):
        path = write(tmp_path, "mod.py", "def broken(:\n")
        findings, suppressed = lint_file(path, ALL_RULES)
        assert [f.rule for f in findings] == ["parse-error"]
        assert suppressed == 0

    def test_unknown_rule_id_raises(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1\n")
        with pytest.raises(KeyError):
            run_lint([str(tmp_path)], rule_ids=["no-such-rule"])

    def test_every_rule_has_id_and_summary(self):
        for rule in ALL_RULES:
            assert rule.id and rule.summary
        assert len(RULES_BY_ID) == len(ALL_RULES)

    def test_real_tree_is_clean(self):
        result = run_lint([str(REPO_SRC)])
        assert result.ok, [f.render() for f in result.errors]


class TestMainExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out

    def test_errors_exit_one(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "import json\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "unused-import" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent")]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1\n")
        assert main([str(tmp_path), "--rules", "bogus"]) == 2

    def test_json_report(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "import json\n")
        assert main([str(tmp_path), "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == 1
        assert payload["errors"] == 1
        assert payload["findings"][0]["rule"] == "unused-import"

    def test_suppressions_honored_end_to_end(self, tmp_path, capsys):
        write(
            tmp_path,
            "mod.py",
            "import json  # repro-lint: disable=unused-import\n",
        )
        assert main([str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["errors"] == 0
        assert payload["suppressed"] == 1

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_rule_selection(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "import json\ntry:\n    pass\nexcept:\n    pass\n")
        assert main([str(tmp_path), "--rules", "bare-except"]) == 1
        out = capsys.readouterr().out
        assert "bare-except" in out
        assert "unused-import" not in out
