"""Fixture-based tests for the project call-graph builder.

Each test writes a miniature package under ``tmp_path`` and asserts the
edges :func:`repro.analysis.callgraph.build_callgraph` recovers from it:
direct calls, self-dispatch through inheritance, annotation- and
constructor-driven method resolution, re-exports through ``__init__``,
and the explicit ``unresolved`` records for calls the builder refuses to
guess at.  The real source tree gets a smoke assertion at the end.
"""

from pathlib import Path

from repro.analysis.callgraph import MODULE_BODY, build_callgraph

REPO_SRC = Path(__file__).resolve().parents[1] / "src"


def build(tmp_path, files):
    """Write ``files`` under ``tmp_path/pkg`` and build its call graph."""
    for rel, source in files.items():
        path = tmp_path / "pkg" / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
    return build_callgraph(tmp_path / "pkg")


def edge_set(graph, kind=None):
    return {
        (edge.caller, edge.callee)
        for edge in graph.edges
        if kind is None or edge.kind == kind
    }


class TestIntraModuleResolution:
    def test_direct_call_edge(self, tmp_path):
        graph = build(
            tmp_path,
            {"mod.py": "def helper():\n    return 1\n\ndef caller():\n    return helper()\n"},
        )
        assert ("pkg.mod.caller", "pkg.mod.helper") in edge_set(graph, "direct")

    def test_decorated_function_is_indexed_and_callable(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": (
                    "import functools\n\n"
                    "def helper():\n    return 1\n\n"
                    "@functools.lru_cache(maxsize=None)\n"
                    "def cached():\n    return helper()\n"
                )
            },
        )
        assert "pkg.mod.cached" in graph.functions
        assert ("pkg.mod.cached", "pkg.mod.helper") in edge_set(graph, "direct")

    def test_module_body_calls_attach_to_synthetic_function(self, tmp_path):
        graph = build(
            tmp_path,
            {"mod.py": "def helper():\n    return 1\n\nhelper()\n"},
        )
        body = f"pkg.mod.{MODULE_BODY}"
        assert body in graph.functions
        assert ("pkg.mod." + MODULE_BODY, "pkg.mod.helper") in edge_set(graph)

    def test_nested_statement_bodies_are_indexed(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "mod.py": (
                    "try:\n"
                    "    def guarded():\n        return 1\n"
                    "except ImportError:\n"
                    "    def guarded():\n        return 2\n"
                )
            },
        )
        assert "pkg.mod.guarded" in graph.functions


class TestMethodDispatch:
    SOURCE = {
        "core.py": (
            "class Base:\n"
            "    def shared(self):\n"
            "        return self.hook()\n\n"
            "    def hook(self):\n"
            "        return 0\n\n\n"
            "class Session(Base):\n"
            "    def __init__(self):\n"
            "        self.base = Base()\n\n"
            "    def run(self):\n"
            "        self.hook()\n"
            "        return self.base.shared()\n"
        )
    }

    def test_self_dispatch_resolves_through_inheritance(self, tmp_path):
        graph = build(tmp_path, dict(self.SOURCE))
        edges = edge_set(graph, "self")
        # Base.shared -> self.hook() on its own class
        assert ("pkg.core.Base.shared", "pkg.core.Base.hook") in edges
        # Session.run -> self.hook(): Session has no hook, Base does
        assert ("pkg.core.Session.run", "pkg.core.Base.hook") in edges

    def test_attribute_types_learned_from_init(self, tmp_path):
        # self.base = Base() in __init__ types the attribute, so
        # self.base.shared() resolves without any annotation
        graph = build(tmp_path, dict(self.SOURCE))
        assert ("pkg.core.Session.run", "pkg.core.Base.shared") in edge_set(
            graph, "typed"
        )

    def test_annotated_parameter_dispatch(self, tmp_path):
        files = dict(self.SOURCE)
        files["uses.py"] = (
            "from pkg.core import Session\n\n"
            "def typed(s: Session):\n"
            "    return s.run()\n"
        )
        graph = build(tmp_path, files)
        assert ("pkg.uses.typed", "pkg.core.Session.run") in edge_set(
            graph, "typed"
        )

    def test_constructor_call_types_the_local(self, tmp_path):
        files = dict(self.SOURCE)
        files["uses.py"] = (
            "from pkg.core import Session\n\n"
            "def construct():\n"
            "    s = Session()\n"
            "    return s.run()\n"
        )
        graph = build(tmp_path, files)
        assert ("pkg.uses.construct", "pkg.core.Session.__init__") in edge_set(
            graph, "constructor"
        )
        assert ("pkg.uses.construct", "pkg.core.Session.run") in edge_set(
            graph, "typed"
        )


class TestReExports:
    def test_symbol_reexported_through_init(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "__init__.py": "from .core import helper\n",
                "core.py": "def helper():\n    return 1\n",
                "uses.py": (
                    "from pkg import helper\n\n"
                    "def go():\n    return helper()\n"
                ),
            },
        )
        assert ("pkg.uses.go", "pkg.core.helper") in edge_set(graph, "direct")

    def test_chained_reexport(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "__init__.py": "from .middle import helper\n",
                "middle.py": "from .core import helper\n",
                "core.py": "def helper():\n    return 1\n",
                "uses.py": (
                    "from pkg import helper\n\n"
                    "def go():\n    return helper()\n"
                ),
            },
        )
        assert ("pkg.uses.go", "pkg.core.helper") in edge_set(graph, "direct")


class TestUnresolvedCalls:
    def test_callable_parameter_is_an_explicit_unresolved_record(self, tmp_path):
        graph = build(
            tmp_path,
            {"mod.py": "def dynamic(cb):\n    return cb()\n"},
        )
        records = [
            u for u in graph.unresolved if u.caller == "pkg.mod.dynamic"
        ]
        assert records and records[0].reason == "dynamic-receiver"

    def test_unique_uncommon_method_name_resolves_by_name(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "core.py": (
                    "class Widget:\n"
                    "    def frobnicate_widget(self):\n        return 1\n"
                ),
                "uses.py": (
                    "def byname(x):\n    return x.frobnicate_widget()\n"
                ),
            },
        )
        assert (
            "pkg.uses.byname",
            "pkg.core.Widget.frobnicate_widget",
        ) in edge_set(graph, "by-name")

    def test_ambiguous_method_name_stays_unresolved(self, tmp_path):
        graph = build(
            tmp_path,
            {
                "core.py": (
                    "class A:\n"
                    "    def frobnicate_widget(self):\n        return 1\n\n\n"
                    "class B:\n"
                    "    def frobnicate_widget(self):\n        return 2\n"
                ),
                "uses.py": (
                    "def byname(x):\n    return x.frobnicate_widget()\n"
                ),
            },
        )
        assert edge_set(graph, "by-name") == set()
        reasons = {
            u.reason for u in graph.unresolved if u.caller == "pkg.uses.byname"
        }
        assert "ambiguous-method" in reasons

    def test_common_container_method_never_resolves_by_name(self, tmp_path):
        # `get` is a dict method: a single project class defining it must
        # not capture every untyped x.get(...) in the tree
        graph = build(
            tmp_path,
            {
                "core.py": "class Store:\n    def get(self, k):\n        return k\n",
                "uses.py": "def common(x):\n    return x.get('k')\n",
            },
        )
        assert ("pkg.uses.common", "pkg.core.Store.get") not in edge_set(graph)


class TestTraversals:
    FILES = {
        "mod.py": (
            "def a():\n    return b()\n\n"
            "def b():\n    return c()\n\n"
            "def c():\n    return 1\n\n"
            "def island():\n    return 2\n"
        )
    }

    def test_reachable(self, tmp_path):
        graph = build(tmp_path, dict(self.FILES))
        reached = graph.reachable("pkg.mod.a")
        assert {"pkg.mod.a", "pkg.mod.b", "pkg.mod.c"} <= reached
        assert "pkg.mod.island" not in reached

    def test_shortest_chain_records_call_sites(self, tmp_path):
        graph = build(tmp_path, dict(self.FILES))
        chain = graph.shortest_chain(
            "pkg.mod.a", lambda q: q == "pkg.mod.c"
        )
        assert [step.qualname for step in chain] == [
            "pkg.mod.a",
            "pkg.mod.b",
            "pkg.mod.c",
        ]
        # the first step is the start (line 0); later steps carry the
        # call-site line in their caller
        assert chain[0].lineno == 0
        assert all(step.lineno > 0 for step in chain[1:])

    def test_shortest_chain_returns_none_when_unreachable(self, tmp_path):
        graph = build(tmp_path, dict(self.FILES))
        assert (
            graph.shortest_chain("pkg.mod.island", lambda q: q == "pkg.mod.c")
            is None
        )

    def test_find_matches_exact_and_suffix(self, tmp_path):
        graph = build(tmp_path, dict(self.FILES))
        assert [f.qualname for f in graph.find("pkg.mod.a")] == ["pkg.mod.a"]
        assert [f.qualname for f in graph.find("mod.a")] == ["pkg.mod.a"]
        assert graph.find("nope.nope") == []


class TestRealTree:
    def test_real_source_tree_builds(self):
        graph = build_callgraph(REPO_SRC / "repro")
        # sanity floor, not an exact count: the tree keeps growing
        assert len(graph.functions) > 500
        assert len(graph.edges) > 1000
        # the service contract methods must be present and connected
        (submit,) = graph.find("SessionManager.submit")
        assert graph.callees_of(submit.qualname)
