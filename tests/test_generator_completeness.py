"""Completeness of the lazy generator: it must reach ALL of ``A``.

If the successor rules missed a member of the expansion set, the miner
could silently miss MSPs.  These tests brute-force the expansion set of
small random query spaces and check every member is reachable from the
roots via ``successors``.
"""

import itertools
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.oassisql import parse_query
from repro.ontology import Fact, Ontology
from repro.vocabulary import Element

QUERY = """
SELECT FACT-SETS
WHERE
  $x subClassOf* Food .
  $y subClassOf* Drink .
  $x goesWith $y
SATISFYING
  $x+ servedWith $y
WITH SUPPORT = 0.5
"""


@st.composite
def random_spaces(draw):
    """A small random two-taxonomy ontology with random goesWith pairs."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    foods = draw(st.integers(min_value=2, max_value=4))
    drinks = draw(st.integers(min_value=1, max_value=3))
    ontology = Ontology()
    food_leaves = []
    for index in range(foods):
        name = f"F{index}"
        # random tree: attach to Food or an earlier food
        parent = "Food" if index == 0 or rng.random() < 0.6 else f"F{rng.randrange(index)}"
        ontology.add(Fact(name, "subClassOf", parent))
        food_leaves.append(name)
    drink_leaves = []
    for index in range(drinks):
        name = f"D{index}"
        parent = "Drink" if index == 0 or rng.random() < 0.6 else f"D{rng.randrange(index)}"
        ontology.add(Fact(name, "subClassOf", parent))
        drink_leaves.append(name)
    # random goesWith pairs (at least one)
    pairs = draw(
        st.sets(
            st.tuples(
                st.integers(min_value=0, max_value=foods - 1),
                st.integers(min_value=0, max_value=drinks - 1),
            ),
            min_size=1,
            max_size=foods * drinks,
        )
    )
    for f, d in pairs:
        ontology.add(Fact(f"F{f}", "goesWith", f"D{d}"))
    ontology.vocabulary.add_relation("servedWith")
    query = parse_query(QUERY)
    return QueryAssignmentSpace(ontology, query, max_values_per_var=2)


def brute_force_expansion(space: QueryAssignmentSpace):
    """All multiplicity-respecting members of ``A`` by exhaustive search."""
    vocab = space.vocabulary
    x_universe = sorted(space.universe("x"), key=str)
    y_universe = sorted(space.universe("y"), key=str)
    members = []
    x_sets = [frozenset({v}) for v in x_universe] + [
        frozenset(pair) for pair in itertools.combinations(x_universe, 2)
    ]
    for x_values in x_sets:
        for y_value in y_universe:
            node = Assignment.make(vocab, {"x": set(x_values), "y": {y_value}})
            # skip non-canonical value sets (comparable pairs collapse)
            if len(node.get("x")) != len(x_values):
                continue
            if space.in_expansion(node):
                members.append(node)
    return members


@given(random_spaces())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_every_expansion_member_is_reachable(space):
    reachable = set(space.all_nodes())
    for member in brute_force_expansion(space):
        assert member in reachable, f"unreachable expansion member: {member!r}"


@given(random_spaces())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_reachable_set_is_inside_expansion(space):
    for node in space.all_nodes():
        assert space.in_expansion(node), f"traversal left A: {node!r}"


@given(random_spaces())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_expansion_is_downward_closed(space):
    vocab = space.vocabulary
    nodes = space.all_nodes()
    for node in nodes:
        for predecessor in space.predecessors(node):
            # predecessors of an A-member must be in A (down-closure)
            if predecessor.get("x") and predecessor.get("y"):
                assert space.in_expansion(predecessor), (node, predecessor)


@given(random_spaces())
@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_valid_base_reachable(space):
    reachable = set(space.all_nodes())
    for base in space.valid_base_assignments():
        assert base in reachable
