"""Unit tests for the subsumption reasoner."""

import pytest

from repro.datasets import running_example
from repro.ontology import Fact, Reasoner, fact_set
from repro.vocabulary import Element


@pytest.fixture()
def reasoner() -> Reasoner:
    return Reasoner(running_example.build_ontology())


class TestTaxonomyQueries:
    def test_subclasses_reflexive(self, reasoner):
        subs = reasoner.subclasses("Sport")
        assert Element("Sport") in subs
        assert Element("Basketball") in subs

    def test_subclasses_strict(self, reasoner):
        subs = reasoner.subclasses("Sport", strict=True)
        assert Element("Sport") not in subs
        assert Element("Biking") in subs

    def test_superclasses(self, reasoner):
        supers = reasoner.superclasses("Basketball")
        assert Element("Ball Game") in supers
        assert Element("Activity") in supers

    def test_instances_direct(self, reasoner):
        assert Element("Central Park") in reasoner.instances("Park")

    def test_instances_through_subclasses(self, reasoner):
        # Central Park instanceOf Park, Park subClassOf Outdoor
        assert Element("Central Park") in reasoner.instances("Outdoor")
        assert Element("Central Park") in reasoner.instances("Attraction")

    def test_instances_unknown_relation(self):
        from repro.ontology import Ontology

        empty = Reasoner(Ontology())
        assert empty.instances("Anything") == frozenset()

    def test_is_instance(self, reasoner):
        assert reasoner.is_instance("Bronx Zoo", "Attraction")
        assert not reasoner.is_instance("NYC", "Attraction")


class TestImplication:
    def test_implied_facts_generalize_components(self, reasoner):
        implied = reasoner.implied_facts(
            fact_set(("Basketball", "doAt", "Central Park"))
        )
        assert Fact("Sport", "doAt", "Central Park") in implied
        assert Fact("Basketball", "doAt", "Park") in implied
        assert Fact("Activity", "doAt", "Attraction") in implied

    def test_least_upper_bounds(self, reasoner):
        lubs = reasoner.least_upper_bounds(Element("Basketball"), Element("Biking"))
        assert lubs == {Element("Sport")}

    def test_least_upper_bounds_self(self, reasoner):
        assert reasoner.least_upper_bounds(
            Element("Biking"), Element("Biking")
        ) == {Element("Biking")}

    def test_taxonomy_acyclic(self, reasoner):
        assert reasoner.check_taxonomy_acyclic()
