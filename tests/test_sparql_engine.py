"""Unit tests for BGP evaluation against the Figure 1 ontology."""

import pytest

from repro.datasets import running_example
from repro.sparql import SparqlEngine, parse_bgp
from repro.vocabulary import Element, Relation


@pytest.fixture(scope="module")
def engine() -> SparqlEngine:
    return SparqlEngine(running_example.build_ontology())


def names(solutions, var):
    return sorted(str(s[var]) for s in solutions)


class TestBasicMatching:
    def test_concrete_pattern_ask(self, engine):
        assert engine.ask(parse_bgp("<Central Park> inside NYC"))
        assert not engine.ask(parse_bgp("NYC inside <Central Park>"))

    def test_single_variable_object(self, engine):
        solutions = list(engine.solutions(parse_bgp("<Central Park> inside $c")))
        assert names(solutions, "c") == ["NYC"]

    def test_single_variable_subject(self, engine):
        solutions = list(engine.solutions(parse_bgp("$x inside NYC")))
        assert names(solutions, "x") == ["Bronx Zoo", "Central Park", "Madison Square"]

    def test_relation_variable(self, engine):
        solutions = list(engine.solutions(parse_bgp("<Central Park> $p NYC")))
        assert names(solutions, "p") == ["inside"]

    def test_join_two_patterns(self, engine):
        bgp = parse_bgp("$x instanceOf Park . $x inside NYC")
        solutions = list(engine.solutions(bgp))
        assert names(solutions, "x") == ["Central Park", "Madison Square"]

    def test_blank_node_existential(self, engine):
        bgp = parse_bgp("[] nearBy $x")
        solutions = list(engine.solutions(bgp))
        # blanks are projected away; duplicates collapse.  NYC appears via
        # the inside edges, since nearBy <=R inside.
        assert names(solutions, "x") == ["Bronx Zoo", "Central Park", "NYC"]
        assert all(len(s) == 1 for s in solutions)

    def test_no_solutions(self, engine):
        assert list(engine.solutions(parse_bgp("$x inside Paris"))) == []


class TestPropertyPaths:
    def test_star_includes_zero_steps(self, engine):
        solutions = list(engine.solutions(parse_bgp("$w subClassOf* Attraction")))
        found = names(solutions, "w")
        assert "Attraction" in found  # zero steps
        assert "Park" in found and "Zoo" in found  # transitive

    def test_star_backward(self, engine):
        solutions = list(engine.solutions(parse_bgp("Park subClassOf* $up")))
        assert "Place" in names(solutions, "up")

    def test_plus_excludes_zero_steps(self, engine):
        solutions = list(engine.solutions(parse_bgp("$w subClassOf+ Attraction")))
        found = names(solutions, "w")
        assert "Attraction" not in found
        assert "Park" in found

    def test_opt_zero_or_one(self, engine):
        solutions = list(engine.solutions(parse_bgp("$w subClassOf? Attraction")))
        found = names(solutions, "w")
        assert "Attraction" in found
        assert "Outdoor" in found
        assert "Park" not in found  # two steps away

    def test_fully_bound_path(self, engine):
        assert engine.ask(parse_bgp("Basketball subClassOf* Activity"))
        assert not engine.ask(parse_bgp("Basketball subClassOf* Place"))


class TestRelationSpecialization:
    def test_nearby_pattern_matches_inside_edges(self, engine):
        # nearBy ≤R inside in Figure 1, so inside facts satisfy nearBy
        solutions = list(engine.solutions(parse_bgp("$z nearBy <Central Park>")))
        assert "Maoz Veg" in names(solutions, "z")
        solutions = list(engine.solutions(parse_bgp("$x nearBy NYC")))
        assert "Central Park" in names(solutions, "x")

    def test_inside_pattern_does_not_match_nearby_edges(self, engine):
        solutions = list(engine.solutions(parse_bgp("$z inside <Central Park>")))
        assert names(solutions, "z") == []


class TestLabelMatching:
    def test_label_filter(self, engine):
        bgp = parse_bgp('$x hasLabel "child-friendly"')
        solutions = list(engine.solutions(bgp))
        assert names(solutions, "x") == ["Bronx Zoo", "Central Park"]

    def test_label_enumeration(self, engine):
        bgp = parse_bgp("<Central Park> hasLabel $l")
        solutions = list(engine.solutions(bgp))
        assert [s["l"] for s in solutions] == ["child-friendly"]

    def test_label_fully_bound(self, engine):
        assert engine.ask(parse_bgp('<Central Park> hasLabel "child-friendly"'))
        assert not engine.ask(parse_bgp('NYC hasLabel "child-friendly"'))


class TestFullWhereClause:
    def test_figure2_where_clause(self, engine):
        from repro.oassisql import parse_query

        query = parse_query(running_example.SAMPLE_QUERY)
        solutions = list(engine.solutions(query.where))
        # 2 attractions x 7 activity values (Activity, Sport, Ball Game,
        # Basketball, Baseball, Biking, Water Sport, Swimming, Water Polo,
        # Feed a monkey) restricted to subClassOf* Activity
        xs = {str(s["x"]) for s in solutions}
        assert xs == {"Central Park", "Bronx Zoo"}
        pairs = {(str(s["x"]), str(s["z"])) for s in solutions}
        assert pairs == {("Central Park", "Maoz Veg"), ("Bronx Zoo", "Pine")}
        ys = {str(s["y"]) for s in solutions}
        assert "Biking" in ys and "Activity" in ys
        # Madison Square has no child-friendly label -> excluded
        assert "Madison Square" not in xs


class TestLabelEnumeration:
    def test_both_free_enumerates_all_labels(self, engine):
        bgp = parse_bgp("$x hasLabel $l")
        solutions = list(engine.solutions(bgp))
        pairs = {(str(s["x"]), s["l"]) for s in solutions}
        assert ("Central Park", "child-friendly") in pairs
        assert ("Bronx Zoo", "child-friendly") in pairs

    def test_relation_variable_binds_to_relations(self, engine):
        from repro.vocabulary import Relation

        bgp = parse_bgp("<Maoz Veg> $p <Central Park>")
        solutions = list(engine.solutions(bgp))
        assert [s["p"] for s in solutions] == [Relation("nearBy")]

    def test_shared_variable_subject_object(self, engine):
        # $x r $x: no self-loops exist in Figure 1
        bgp = parse_bgp("$x inside $x")
        assert list(engine.solutions(bgp)) == []
