"""Unit tests for the Vocabulary and VocabularyBuilder."""

import pytest

from repro.vocabulary import (
    Element,
    Relation,
    UnknownTermError,
    Vocabulary,
    VocabularyBuilder,
)


def small_vocab() -> Vocabulary:
    vocab = Vocabulary()
    vocab.specialize_element("Activity", "Sport")
    vocab.specialize_element("Sport", "Biking")
    vocab.specialize_relation("nearBy", "inside")
    vocab.add_relation("doAt")
    return vocab


class TestVocabulary:
    def test_add_element_idempotent(self):
        vocab = Vocabulary()
        first = vocab.add_element("NYC")
        second = vocab.add_element("NYC")
        assert first is second

    def test_lookup_known(self):
        vocab = small_vocab()
        assert vocab.element("Sport") == Element("Sport")
        assert vocab.relation("doAt") == Relation("doAt")

    def test_lookup_unknown_raises(self):
        vocab = small_vocab()
        with pytest.raises(UnknownTermError):
            vocab.element("Paris")
        with pytest.raises(UnknownTermError):
            vocab.relation("flysTo")

    def test_has_checks(self):
        vocab = small_vocab()
        assert vocab.has_element("Biking")
        assert not vocab.has_element("doAt")
        assert vocab.has_relation("inside")

    def test_len_counts_both_universes(self):
        vocab = small_vocab()
        # elements: Activity, Sport, Biking; relations: nearBy, inside, doAt
        assert len(vocab) == 6

    def test_leq_element_order(self):
        vocab = small_vocab()
        assert vocab.leq(Element("Activity"), Element("Biking"))
        assert not vocab.leq(Element("Biking"), Element("Activity"))

    def test_leq_relation_order(self):
        vocab = small_vocab()
        assert vocab.leq(Relation("nearBy"), Relation("inside"))
        assert not vocab.leq(Relation("inside"), Relation("nearBy"))

    def test_leq_cross_kind_incomparable(self):
        vocab = small_vocab()
        assert not vocab.leq(Element("Sport"), Relation("doAt"))
        assert not vocab.leq(Relation("doAt"), Element("Sport"))

    def test_leq_cache_invalidated_by_mutation(self):
        vocab = small_vocab()
        assert not vocab.leq(Element("Sport"), Element("Skiing"))
        vocab.specialize_element("Sport", "Skiing")
        assert vocab.leq(Element("Sport"), Element("Skiing"))

    def test_comparable(self):
        vocab = small_vocab()
        assert vocab.comparable(Element("Biking"), Element("Activity"))
        assert not vocab.comparable(Element("Biking"), Element("Biking2")) or True
        vocab.specialize_element("Sport", "Swimming")
        assert not vocab.comparable(Element("Biking"), Element("Swimming"))

    def test_children_parents_dispatch(self):
        vocab = small_vocab()
        assert vocab.children(Element("Sport")) == {Element("Biking")}
        assert vocab.parents(Relation("inside")) == {Relation("nearBy")}

    def test_descendants_ancestors_dispatch(self):
        vocab = small_vocab()
        assert Element("Biking") in vocab.descendants(Element("Activity"))
        assert Relation("nearBy") in vocab.ancestors(Relation("inside"))

    def test_copy_is_independent(self):
        vocab = small_vocab()
        dup = vocab.copy()
        dup.specialize_element("Sport", "Climbing")
        assert not vocab.has_element("Climbing")
        assert dup.leq(Element("Sport"), Element("Climbing"))


class TestVocabularyBuilder:
    def test_element_tree(self):
        vocab = (
            VocabularyBuilder()
            .element_tree(
                "Thing",
                {"Activity": {"Sport": {"Biking": {}, "Ball Game": {}}}},
            )
            .build()
        )
        assert vocab.leq(Element("Thing"), Element("Biking"))
        assert vocab.leq(Element("Activity"), Element("Ball Game"))

    def test_element_with_parent(self):
        vocab = VocabularyBuilder().element("Sport", parent="Activity").build()
        assert vocab.leq(Element("Activity"), Element("Sport"))

    def test_chains(self):
        vocab = (
            VocabularyBuilder()
            .element_chain("A", "B", "C")
            .relation_chain("r", "s")
            .build()
        )
        assert vocab.leq(Element("A"), Element("C"))
        assert vocab.leq(Relation("r"), Relation("s"))

    def test_single_name_chain_registers_term(self):
        vocab = VocabularyBuilder().element_chain("Lonely").build()
        assert vocab.has_element("Lonely")

    def test_builder_extends_existing_vocabulary(self):
        vocab = small_vocab()
        VocabularyBuilder(vocab).element("Swimming", parent="Sport")
        assert vocab.leq(Element("Activity"), Element("Swimming"))
