"""The repro.api facade: one Client, typed DTOs, warn-once legacy shims."""

import warnings

import pytest

import repro.api as api
from repro.api import Client
from repro.engine import reset_deprecation_warnings
from repro.engine.results import QueryResult
from repro.gateway import GatewayConfig, NotFoundError
from repro.gateway.schema import (
    AnswerResponse,
    DatasetList,
    JoinResponse,
    QueryAccepted,
    QuestionBatch,
    ResultResponse,
)
from repro.service.simulation import DOMAINS, build_identical_crowd


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


@pytest.fixture()
def client():
    return Client(domain="demo", config=GatewayConfig(question_timeout=60.0))


class TestSessionStyle:
    def test_methods_return_the_wire_dtos(self, client):
        listing = client.datasets()
        assert isinstance(listing, DatasetList)
        assert listing.active == "demo"
        joined = client.join(member_id="m0")
        assert isinstance(joined, JoinResponse)
        accepted = client.pose_query(threshold=0.4)
        assert isinstance(accepted, QueryAccepted)
        batch = client.next_questions(member_id="m0", k=1)
        assert isinstance(batch, QuestionBatch)
        assert batch.questions
        answered = client.submit_answer(
            member_id="m0", qid=batch.questions[0].qid, support=1.0
        )
        assert isinstance(answered, AnswerResponse)
        assert answered.outcome in ("recorded", "passed")
        result = client.result(session_id=accepted.session_id)
        assert isinstance(result, ResultResponse)
        assert result.session_id == accepted.session_id

    def test_methods_are_keyword_only(self, client):
        with pytest.raises(TypeError):
            client.activate("demo")  # noqa: the old positional shape
        with pytest.raises(TypeError):
            client.join("m0")
        with pytest.raises(TypeError):
            client.result("s1")

    def test_errors_surface_as_gateway_errors(self, client):
        with pytest.raises(NotFoundError):
            client.activate(name="atlantis")
        with pytest.raises(NotFoundError):
            client.result(session_id="never-posed")

    def test_engine_requires_an_active_dataset(self):
        bare = Client()
        with pytest.raises(RuntimeError, match="no dataset is active"):
            bare.engine
        with pytest.raises(RuntimeError, match="no dataset is active"):
            bare.execute(members=[])
        bare.activate(name="demo")
        assert bare.engine is not None


class TestBatchStyle:
    def test_execute_matches_the_legacy_entry_point(self, client):
        dataset = DOMAINS["demo"]()
        members = build_identical_crowd(dataset, 4, seed=0)
        modern = client.execute(query=None, members=members, threshold=0.4)
        assert isinstance(modern, QueryResult)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = api.execute(
                dataset.ontology,
                dataset.query(0.4),
                build_identical_crowd(dataset, 4, seed=0),
            )
        assert sorted(repr(a) for a in modern.all_msps) == sorted(
            repr(a) for a in legacy.all_msps
        )

    def test_simulate_defaults_to_the_active_domain(self, client):
        report = client.simulate(
            sessions=1, workers=2, crowd_size=4, sample_size=3,
            question_timeout=0.25, max_runtime=30.0, seed=0,
        )
        assert report["domain"] == "demo"
        assert report["verified"]

    def test_shard_coordinator_wires_the_active_dataset(self, client):
        coordinator = client.shard_coordinator(
            shards=1, crowd_size=4, sample_size=3
        )
        assert coordinator is not None

    def test_serve_lifts_the_same_state_onto_http(self, client):
        from repro.gateway import GatewayClient

        accepted = client.pose_query(threshold=0.4, session_id="s-served")
        with client.serve() as handle:
            remote = GatewayClient(handle.host, handle.port)
            assert remote.health()["dataset"] == "demo"
            result = remote.result(accepted.session_id)
            assert result.session_id == "s-served"
            remote.close()

    def test_mcp_shares_the_application_state(self, client):
        mcp = client.mcp()
        assert "pose_query" in mcp.available_tools()


class TestLegacyShims:
    def test_each_shim_warns_exactly_once(self):
        dataset = DOMAINS["demo"]()
        members = build_identical_crowd(dataset, 4, seed=0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.execute(dataset.ontology, dataset.query(0.4), members)
            api.execute(dataset.ontology, dataset.query(0.4), members)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "Client" in str(deprecations[0].message)

    def test_run_simulation_shim_delegates_and_warns(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            report = api.run_simulation(
                domain="demo", sessions=1, workers=2, crowd_size=4,
                sample_size=3, question_timeout=0.25, max_runtime=30.0,
                seed=0,
            )
        assert report["verified"]
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "simulate" in str(deprecations[0].message)

    def test_shard_coordinator_shim_warns(self):
        dataset = DOMAINS["demo"]()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            coordinator = api.shard_coordinator(
                dataset, shards=1, crowd_size=4, sample_size=3, domain="demo"
            )
        assert coordinator is not None
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1

    def test_warned_keys_are_distinct_per_shim(self):
        dataset = DOMAINS["demo"]()
        members = build_identical_crowd(dataset, 2, seed=0)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            api.execute(dataset.ontology, dataset.query(0.4), members)
            api.run_simulation(
                domain="demo", sessions=1, workers=1, crowd_size=4,
                sample_size=3, question_timeout=0.25, max_runtime=30.0,
                seed=0,
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2
