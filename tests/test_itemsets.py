"""Tests for classic and taxonomy-aware frequent itemset mining."""

import pytest

from repro.crowd import PersonalDatabase
from repro.datasets import running_example
from repro.mining import (
    extend_with_ancestors,
    frequent_itemsets,
    generalized_frequent_itemsets,
    maximal_fact_sets,
    mine_frequent_fact_sets,
)
from repro.ontology import Fact, fact_set
from repro.vocabulary import Element, PartialOrder


class TestApriori:
    TRANSACTIONS = [
        {"bread", "milk"},
        {"bread", "diapers", "beer", "eggs"},
        {"milk", "diapers", "beer", "cola"},
        {"bread", "milk", "diapers", "beer"},
        {"bread", "milk", "diapers", "cola"},
    ]

    def test_singletons(self):
        frequent = frequent_itemsets(self.TRANSACTIONS, 0.6)
        assert frequent[frozenset({"bread"})] == pytest.approx(0.8)
        assert frozenset({"eggs"}) not in frequent

    def test_pairs(self):
        frequent = frequent_itemsets(self.TRANSACTIONS, 0.6)
        assert frozenset({"bread", "milk"}) in frequent
        assert frozenset({"diapers", "beer"}) in frequent
        assert frozenset({"milk", "beer"}) not in frequent

    def test_antimonotone(self):
        frequent = frequent_itemsets(self.TRANSACTIONS, 0.4)
        for itemset, support in frequent.items():
            for item in itemset:
                smaller = itemset - {item}
                if smaller:
                    assert frequent[smaller] >= support

    def test_empty_transactions(self):
        assert frequent_itemsets([], 0.5) == {}

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            frequent_itemsets(self.TRANSACTIONS, 0.0)

    def test_threshold_one_keeps_universal_items(self):
        transactions = [{"a", "b"}, {"a"}]
        frequent = frequent_itemsets(transactions, 1.0)
        assert frozenset({"a"}) in frequent
        assert frozenset({"b"}) not in frequent


class TestGeneralizedItemsets:
    @pytest.fixture()
    def taxonomy(self) -> PartialOrder:
        order = PartialOrder()
        order.add_edge(Element("Drink"), Element("Beer"))
        order.add_edge(Element("Drink"), Element("Cola"))
        order.add_edge(Element("Food"), Element("Bread"))
        order.add_edge(Element("Food"), Element("Milk"))
        return order

    def test_extend_with_ancestors(self, taxonomy):
        extended = extend_with_ancestors([Element("Beer")], taxonomy)
        assert extended == {Element("Beer"), Element("Drink")}

    def test_items_outside_taxonomy_kept(self, taxonomy):
        extended = extend_with_ancestors([Element("Napkin")], taxonomy)
        assert extended == {Element("Napkin")}

    def test_class_level_itemsets_found(self, taxonomy):
        transactions = [
            {Element("Beer"), Element("Bread")},
            {Element("Cola"), Element("Bread")},
            {Element("Beer"), Element("Milk")},
            {Element("Cola"), Element("Milk")},
        ]
        frequent = generalized_frequent_itemsets(transactions, taxonomy, 0.75)
        # no single drink is frequent, but the Drink class is
        assert frozenset({Element("Drink")}) in frequent
        assert frozenset({Element("Beer")}) not in frequent
        assert frozenset({Element("Drink"), Element("Food")}) in frequent

    def test_redundant_mixed_levels_pruned(self, taxonomy):
        transactions = [{Element("Beer")}] * 4
        frequent = generalized_frequent_itemsets(transactions, taxonomy, 0.5)
        assert frozenset({Element("Beer"), Element("Drink")}) not in frequent
        assert frozenset({Element("Beer")}) in frequent


class TestFactSetMining:
    """Mining Table 3 directly — OASSIS-QL without a crowd (Section 1)."""

    @pytest.fixture(scope="class")
    def setting(self):
        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        databases = [
            [t.facts for t in dbs["u1"]],
            [t.facts for t in dbs["u2"]],
        ]
        return ontology.vocabulary, databases

    def test_known_frequent_fact_set(self, setting):
        vocab, databases = setting
        frequent = mine_frequent_fact_sets(databases, vocab, 0.4, max_size=2)
        biking = fact_set(("Biking", "doAt", "Central Park"))
        assert biking in frequent
        assert frequent[biking] == pytest.approx(5 / 12)

    def test_monkey_feeding_frequent(self, setting):
        vocab, databases = setting
        frequent = mine_frequent_fact_sets(databases, vocab, 0.4, max_size=1)
        monkey = fact_set(("Feed a monkey", "doAt", "Bronx Zoo"))
        assert frequent[monkey] == pytest.approx((3 / 6 + 1 / 2) / 2)

    def test_rare_fact_absent(self, setting):
        vocab, databases = setting
        frequent = mine_frequent_fact_sets(databases, vocab, 0.4, max_size=1)
        assert fact_set(("Basketball", "doAt", "Central Park")) not in frequent

    def test_size_two_combinations(self, setting):
        vocab, databases = setting
        frequent = mine_frequent_fact_sets(databases, vocab, 0.4, max_size=2)
        combo = fact_set(
            ("Biking", "doAt", "Central Park"),
            ("Falafel", "eatAt", "Maoz Veg"),
        )
        assert combo in frequent

    def test_comparable_pairs_skipped(self, setting):
        vocab, databases = setting
        frequent = mine_frequent_fact_sets(databases, vocab, 0.3, max_size=2)
        redundant = fact_set(
            ("Biking", "doAt", "Central Park"),
            ("Sport", "doAt", "Central Park"),
        )
        assert redundant not in frequent

    def test_maximal_fact_sets(self, setting):
        vocab, _ = setting
        sets = [
            fact_set(("Sport", "doAt", "Central Park")),
            fact_set(("Biking", "doAt", "Central Park")),
            fact_set(("Pasta", "eatAt", "Pine")),
        ]
        maximal = maximal_fact_sets(sets, vocab)
        assert fact_set(("Sport", "doAt", "Central Park")) not in maximal
        assert len(maximal) == 2

    def test_invalid_threshold(self, setting):
        vocab, databases = setting
        with pytest.raises(ValueError):
            mine_frequent_fact_sets(databases, vocab, 0.0)

    def test_empty_databases(self, setting):
        vocab, _ = setting
        assert mine_frequent_fact_sets([], vocab, 0.5) == {}
