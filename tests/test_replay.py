"""Tests for threshold replay from the CrowdCache (Section 6.3)."""

import pytest

from repro.assignments import ExplicitDAG
from repro.crowd import CrowdCache
from repro.mining import replay_from_cache


@pytest.fixture()
def dag() -> ExplicitDAG:
    dag = ExplicitDAG()
    for a, b in [(0, 1), (0, 2), (1, 3), (2, 4)]:
        dag.add_edge(a, b)
    return dag


def seeded_cache(supports, members=("u1", "u2", "u3"), nodes=range(5)):
    cache = CrowdCache()
    for node in nodes:
        for member in members:
            cache.record(node, member, supports.get(node, 0.0))
    return cache


class TestReplayFromCache:
    def test_reproduces_msps(self, dag):
        cache = seeded_cache({0: 0.9, 1: 0.8, 2: 0.7, 3: 0.6})
        result = replay_from_cache(dag, cache, 0.5, sample_size=3)
        # 3 is maximal on the left branch; 2 on the right (its child 4 has
        # support 0)
        assert set(result.msps) == {2, 3}
        assert result.cache_misses == 0

    def test_higher_threshold_fewer_answers(self, dag):
        cache = seeded_cache({0: 0.9, 1: 0.8, 2: 0.7, 3: 0.6})
        low = replay_from_cache(dag, cache, 0.5, sample_size=3)
        high = replay_from_cache(dag, cache, 0.75, sample_size=3)
        assert high.questions <= low.questions
        assert set(high.msps) == {1}  # 2 (0.7) and 3 (0.6) drop out

    def test_counts_only_used_answers(self, dag):
        cache = seeded_cache({0: 0.1})  # root insignificant: one ask settles all
        result = replay_from_cache(dag, cache, 0.5, sample_size=3)
        assert result.questions == 3  # three cached answers for the root
        assert result.msps == []

    def test_sample_size_caps_consumption(self, dag):
        cache = seeded_cache({0: 0.9, 1: 0.0, 2: 0.0},
                             members=("a", "b", "c", "d", "e"))
        result = replay_from_cache(dag, cache, 0.5, sample_size=2)
        # root + its two children, two answers each
        assert result.questions == 6

    def test_missing_answers_treated_insignificant(self, dag):
        cache = CrowdCache()
        cache.record(0, "u1", 0.9)
        result = replay_from_cache(dag, cache, 0.5, sample_size=1)
        # children have no cached answers -> insignificant, root is MSP
        assert result.msps == [0]
        assert result.cache_misses == 2

    def test_trace_progress(self, dag):
        cache = seeded_cache({0: 0.9, 1: 0.8, 2: 0.7, 3: 0.6})
        result = replay_from_cache(
            dag, cache, 0.5, sample_size=3, target_msps=[3]
        )
        assert result.trace.points[-1].targets_found == 1
