"""Durability and crash recovery: WAL journal, checkpoints, kill-resume.

The tentpole guarantee of PR 5, tested end to end:

* :class:`DurableCrowdCache` — write-ahead journaling, idempotent
  application, torn-tail tolerance, atomic compaction;
* session checkpoints — atomic write, versioned schema, periodic
  refresh;
* :func:`resolve_journal` — string keys map back to live assignments by
  walking the lattice from its roots;
* the **recovery identity**: a session killed mid-run (handles
  abandoned, nothing closed — a simulated SIGKILL) and restored from
  journal + checkpoint reaches exactly the MSP set of an uninterrupted
  serial run, across seeds and across domains.
"""

import json

import pytest

from repro import OassisEngine
from repro.crowd.journal import DurableCrowdCache, JournalRecord, replay_journal
from repro.crowd.questions import ConcreteQuestion
from repro.observability import atomic_write_json, atomic_write_text
from repro.service import read_checkpoint, resolve_journal, restore_session
from repro.service.session import CHECKPOINT_VERSION
from repro.service.simulation import DOMAINS, build_identical_crowd
from repro.datasets import culinary


@pytest.fixture(scope="module")
def demo():
    return DOMAINS["demo"]()


@pytest.fixture(scope="module")
def engine(demo):
    return OassisEngine(demo.ontology)


class TestAtomicWrite:
    def test_json_roundtrip_without_droppings(self, tmp_path):
        target = tmp_path / "deep" / "report.json"
        atomic_write_json(target, {"b": 2, "a": [1, 2]})
        assert json.loads(target.read_text()) == {"a": [1, 2], "b": 2}
        leftovers = [p for p in target.parent.iterdir() if p != target]
        assert leftovers == []

    def test_overwrites_existing(self, tmp_path):
        target = tmp_path / "report.json"
        atomic_write_json(target, {"old": True})
        atomic_write_json(target, {"new": True})
        assert json.loads(target.read_text()) == {"new": True}

    def test_text_helper(self, tmp_path):
        target = tmp_path / "note.txt"
        atomic_write_text(target, "hello\n")
        assert target.read_text() == "hello\n"


class TestJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        path = tmp_path / "answers.wal"
        with DurableCrowdCache(path) as cache:
            cache.record("nodeA", "m0", 0.5)
            cache.record("nodeA", "m1", 0.75)
            cache.record("nodeB", "m0", 0.25)
        records, corrupt = replay_journal(path)
        assert corrupt == 0
        assert [(r.key, r.member, r.support) for r in records] == [
            ("'nodeA'", "m0", 0.5),
            ("'nodeA'", "m1", 0.75),
            ("'nodeB'", "m0", 0.25),
        ]

    def test_duplicate_application_is_idempotent(self, tmp_path):
        path = tmp_path / "answers.wal"
        with DurableCrowdCache(path) as cache:
            cache.record("node", "m0", 0.5)
            cache.record("node", "m0", 0.5)  # duplicate delivery
            assert cache.answers_for("node") == [("m0", 0.5)]
        records, _ = replay_journal(path)
        assert len(records) == 1

    def test_reopen_replays_and_stays_idempotent(self, tmp_path):
        path = tmp_path / "answers.wal"
        with DurableCrowdCache(path) as cache:
            cache.record("node", "m0", 0.5)
        with DurableCrowdCache(path) as reopened:
            # replayed under the journal's string keys
            assert reopened.answers_for("'node'") == [("m0", 0.5)]
            reopened.record("node", "m0", 0.5)  # same identity: dropped
        records, _ = replay_journal(path)
        assert len(records) == 1

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "answers.wal"
        with DurableCrowdCache(path) as cache:
            cache.record("node", "m0", 0.5)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "k": "torn')  # the crash artifact
        records, corrupt = replay_journal(path)
        assert corrupt == 1
        assert len(records) == 1
        reopened = DurableCrowdCache(path)
        assert reopened.corrupt_lines == 1
        assert reopened.total_answers() == 1
        reopened.close()

    def test_compaction_dedups_atomically(self, tmp_path):
        path = tmp_path / "answers.wal"
        cache = DurableCrowdCache(path)
        cache.record("nodeA", "m0", 0.5)
        cache.record("nodeB", "m1", 1.0)
        # a duplicate line as a crashed writer would leave it
        with path.open("a", encoding="utf-8") as handle:
            handle.write(JournalRecord("'nodeA'", "m0", 0.5).as_line() + "\n")
        count = cache.compact()
        assert count == 2
        records, corrupt = replay_journal(path)
        assert corrupt == 0
        assert len(records) == 2
        assert not list(tmp_path.glob("*.tmp"))
        # the journal stays appendable after the swap
        cache.record("nodeC", "m0", 0.25)
        assert len(replay_journal(path)[0]) == 3
        cache.close()

    def test_close_is_idempotent_and_blocks_writes(self, tmp_path):
        cache = DurableCrowdCache(tmp_path / "answers.wal")
        cache.close()
        cache.close()
        with pytest.raises(RuntimeError):
            cache.record("node", "m0", 0.5)


class TestCheckpoint:
    def _session(self, engine, demo, tmp_path, every=2):
        manager = engine.session_manager()
        session = manager.create_session(
            demo.query(0.4), session_id="ck", sample_size=1
        )
        path = tmp_path / "ck.json"
        session.enable_checkpoints(path, every=every)
        return manager, session, path

    def test_written_on_enable_and_readable(self, engine, demo, tmp_path):
        _, session, path = self._session(engine, demo, tmp_path)
        payload = read_checkpoint(path)
        assert payload["version"] == CHECKPOINT_VERSION
        assert payload["session_id"] == "ck"
        assert payload["sample_size"] == 1
        assert payload["query"] == demo.query(0.4)

    def test_refreshes_every_n_recorded_answers(self, engine, demo, tmp_path):
        manager, session, path = self._session(engine, demo, tmp_path, every=2)
        manager.attach_member("a")
        first = read_checkpoint(path)
        answered = 0
        while answered < 4:
            batch = manager.next_batch("a", k=1)
            if not batch:
                break
            manager.submit(batch[0], 1.0)
            answered += 1
        refreshed = read_checkpoint(path)
        assert refreshed["questions_asked"] > first["questions_asked"]

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "query": "x"}))
        with pytest.raises(ValueError):
            read_checkpoint(path)

    def test_non_object_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError):
            read_checkpoint(path)

    def test_enable_requires_query_text_and_positive_every(
        self, engine, demo, tmp_path
    ):
        manager = engine.session_manager()
        session = manager.create_session(demo.query(0.4), session_id="s")
        with pytest.raises(ValueError):
            session.enable_checkpoints(tmp_path / "x.json", every=0)
        parsed = engine.parse(demo.query(0.4))
        opaque = manager.create_session(parsed, session_id="opaque")
        with pytest.raises(ValueError):
            opaque.enable_checkpoints(tmp_path / "y.json", every=2)


class TestResolveJournal:
    def test_maps_keys_back_through_the_lattice(self, engine, demo):
        query = engine.parse(demo.query(0.4))
        space = engine.build_space(query)
        [root] = space.roots()
        child = space.successors(root)[0]
        records = [
            JournalRecord(repr(root), "m0", 1.0),
            JournalRecord(repr(child), "m0", 0.5),
        ]
        resolved, unresolved = resolve_journal(space, query.threshold, records)
        assert unresolved == 0
        assert resolved[root] == [("m0", 1.0)]
        assert resolved[child] == [("m0", 0.5)]

    def test_orphan_record_counts_as_unresolved(self, engine, demo):
        query = engine.parse(demo.query(0.4))
        space = engine.build_space(query)
        records = [JournalRecord("not-a-node", "m0", 1.0)]
        resolved, unresolved = resolve_journal(space, query.threshold, records)
        assert resolved == {}
        assert unresolved == 1

    def test_child_without_qualifying_parent_stays_unresolved(
        self, engine, demo
    ):
        query = engine.parse(demo.query(0.4))
        space = engine.build_space(query)
        [root] = space.roots()
        child = space.successors(root)[0]
        # the parent's support is below threshold: the traversal that
        # wrote this journal could never have reached the child, so a
        # child record without a qualifying parent is an inconsistency —
        # counted, not resolved
        records = [
            JournalRecord(repr(root), "m0", 0.1),
            JournalRecord(repr(child), "m0", 0.5),
        ]
        resolved, unresolved = resolve_journal(space, query.threshold, records)
        assert resolved == {root: [("m0", 0.1)]}
        assert unresolved == 1


def _pump(manager, members, *, stop_after=None):
    """Single-threaded dispatch/submit loop (no sleeping, no threads)."""
    by_id = {m.member_id: m for m in members}
    for member in members:
        manager.attach_member(member.member_id)
    answered = 0
    while not manager.all_done():
        progress = False
        for member_id in manager.members():
            for question in manager.next_batch(member_id, k=4):
                progress = True
                support = (
                    by_id[member_id]
                    .answer_concrete(
                        ConcreteQuestion(question.assignment, question.fact_set)
                    )
                    .support
                )
                manager.submit(question, support)
                answered += 1
                if stop_after is not None and answered >= stop_after:
                    return answered
        if not progress:
            raise RuntimeError("pump stalled with open sessions")
    return answered


def _kill_and_resume(engine, dataset, tmp_path, *, seed, crowd_size=4,
                     sample_size=3, kill_after=10, threshold=0.4):
    """Run the kill/restore protocol; returns (resumed, expected) MSPs."""
    query = dataset.query(threshold)
    baseline = build_identical_crowd(dataset, crowd_size, seed=seed, prefix="b")
    expected = sorted(
        repr(a)
        for a in engine.execute(
            query, baseline, sample_size=sample_size
        ).all_msps
    )
    wal = tmp_path / f"s{seed}.wal"
    ckpt = tmp_path / f"s{seed}.ckpt.json"
    manager = engine.session_manager(question_timeout=60.0)
    cache = DurableCrowdCache(wal)
    session = manager.create_session(
        query, session_id="victim", sample_size=sample_size, cache=cache
    )
    session.enable_checkpoints(ckpt, every=5)
    members = build_identical_crowd(dataset, crowd_size, seed=seed)
    killed_at = _pump(manager, members, stop_after=kill_after)
    assert killed_at == kill_after
    # simulated SIGKILL: manager, session and journal handle abandoned —
    # only the flushed journal and the checkpoint survive
    fresh_manager = engine.session_manager(question_timeout=60.0)
    restored = restore_session(
        fresh_manager, checkpoint_path=ckpt, journal_path=wal
    )
    assert restored.session_id == "victim"
    _pump(fresh_manager, build_identical_crowd(dataset, crowd_size, seed=seed))
    resumed = sorted(repr(a) for a in restored.msps())
    restored.cache.close()
    return resumed, expected


class TestKillResumeIdentity:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_demo_identity_across_seeds(self, engine, demo, tmp_path, seed):
        resumed, expected = _kill_and_resume(
            engine, demo, tmp_path, seed=seed
        )
        assert resumed == expected
        assert len(expected) > 0

    def test_culinary_identity(self, tmp_path):
        dataset = culinary.build_dataset()
        engine = OassisEngine(dataset.ontology)
        resumed, expected = _kill_and_resume(
            engine, dataset, tmp_path, seed=0, kill_after=25, threshold=0.3
        )
        assert resumed == expected

    def test_resume_does_not_reask_journaled_answers(
        self, engine, demo, tmp_path
    ):
        dataset = demo
        query = dataset.query(0.4)
        wal = tmp_path / "s.wal"
        ckpt = tmp_path / "s.ckpt.json"
        manager = engine.session_manager(question_timeout=60.0)
        session = manager.create_session(
            query, session_id="victim", sample_size=3,
            cache=DurableCrowdCache(wal),
        )
        session.enable_checkpoints(ckpt, every=5)
        members = build_identical_crowd(dataset, 4)
        _pump(manager, members, stop_after=10)
        journaled = len(replay_journal(wal)[0])
        fresh = engine.session_manager(question_timeout=60.0)
        restored = restore_session(fresh, checkpoint_path=ckpt, journal_path=wal)
        _pump(fresh, build_identical_crowd(dataset, 4))
        # every pre-kill answer survived; the resumed run added its own
        final = len(replay_journal(wal)[0])
        assert journaled == 10
        assert final > journaled
        total = sum(
            len(restored.cache.answers_for(a))
            for a in restored.cache.assignments()
        )
        assert total == final  # journal and cache agree exactly
        restored.cache.close()
