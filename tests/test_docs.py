"""Documentation consistency: the examples in the docs must stay runnable."""

import pathlib
import re

import pytest

from repro.oassisql import parse_query

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"
ROOT = DOCS.parent


def _full_queries(text: str):
    """Complete OASSIS-QL queries from ```sparql blocks (skip grammar BNF)."""
    for block in re.findall(r"```sparql\n(.*?)```", text, re.S):
        if "SELECT" not in block or "WITH SUPPORT" not in block:
            continue
        if "(" in block:
            continue  # the grammar skeleton, not a concrete query
        if "--" in block:
            block = "\n".join(line.split("--")[0] for line in block.splitlines())
        yield block


class TestLanguageGuide:
    def test_worked_examples_parse(self):
        text = (DOCS / "LANGUAGE.md").read_text()
        queries = list(_full_queries(text))
        assert len(queries) >= 3
        for query in queries:
            parse_query(query)

    def test_readme_query_parses(self):
        text = (ROOT / "README.md").read_text()
        queries = list(_full_queries(text))
        assert queries, "README should contain the Figure 2 query"
        for query in queries:
            parse_query(query)


def _python_blocks(doc_name):
    text = (DOCS / doc_name).read_text()
    return re.findall(r"```python\n(.*?)```", text, re.S)


def _execute_blocks(doc_name, monkeypatch, capsys):
    """Run a doc's ```python blocks cumulatively in one namespace, top to
    bottom, like a reader following the guide in a REPL.

    Runs from the repository root (the PERFORMANCE.md table renderer
    reads ``BENCH_perf.json`` relatively) with the support backend reset
    to the shipped default (TUNING.md asserts it)."""
    from repro.crowd import set_support_backend

    monkeypatch.chdir(ROOT)
    set_support_backend("adaptive")
    namespace = {}
    for index, block in enumerate(_python_blocks(doc_name)):
        code = compile(block, f"{doc_name}[block {index}]", "exec")
        exec(code, namespace)  # noqa: S102 - executing our own docs


class TestObservabilityGuide:
    def test_has_worked_examples(self):
        assert len(_python_blocks("OBSERVABILITY.md")) >= 2

    def test_python_blocks_execute(self, monkeypatch, capsys):
        _execute_blocks("OBSERVABILITY.md", monkeypatch, capsys)

    def test_documented_counters_match_the_code(self):
        """Counter names in the doc's table exist in the source (and the
        engine-layer ones actually fire on a traced run)."""
        text = (DOCS / "OBSERVABILITY.md").read_text()
        documented = set(
            re.findall(
                r"`((?:crowd|cache|aggregator|mining|lattice|sparql|replay)"
                r"\.[a-z_.]+[a-z_])`",
                text,
            )
        )
        self._assert_counters_recorded(documented)

    @staticmethod
    def _assert_counters_recorded(documented):
        assert documented, "the naming-scheme table went missing"
        src = ROOT / "src" / "repro"
        source_text = "\n".join(p.read_text() for p in src.rglob("*.py"))
        missing = {
            name for name in documented if f'"{name}"' not in source_text
        }
        assert not missing, f"documented but never recorded: {sorted(missing)}"


class TestPerformanceGuide:
    """docs/PERFORMANCE.md: the profiling handbook stays executable and
    its backend-choice table always renders from BENCH_perf.json."""

    def test_has_worked_examples(self):
        assert len(_python_blocks("PERFORMANCE.md")) >= 2

    def test_python_blocks_execute(self, monkeypatch, capsys):
        _execute_blocks("PERFORMANCE.md", monkeypatch, capsys)

    def test_table_renders_every_benched_domain(self, monkeypatch, capsys):
        import json

        _execute_blocks("PERFORMANCE.md", monkeypatch, capsys)
        rendered = capsys.readouterr().out
        report = json.loads((ROOT / "BENCH_perf.json").read_text())
        for domain in report["e2e"]:
            assert domain in rendered, f"{domain} missing from the table"


class TestTuningGuide:
    """docs/TUNING.md: every operator recipe must execute as written."""

    def test_has_worked_examples(self):
        assert len(_python_blocks("TUNING.md")) >= 2

    def test_python_blocks_execute(self, monkeypatch, capsys):
        _execute_blocks("TUNING.md", monkeypatch, capsys)

    def test_documented_backend_counters_match_the_code(self):
        text = (DOCS / "TUNING.md").read_text()
        documented = set(
            re.findall(r"`((?:backend|support\.count|tid_index)\.[a-z_.]+)`", text)
        )
        assert documented, "the backend-counter table went missing"
        TestObservabilityGuide._assert_counters_recorded(documented)


class TestGatewayGuide:
    """docs/GATEWAY.md: the serving recipes execute, and every counter
    the doc names is actually recorded by the gateway."""

    def test_has_worked_examples(self):
        assert len(_python_blocks("GATEWAY.md")) >= 2

    def test_python_blocks_execute(self, monkeypatch, capsys):
        _execute_blocks("GATEWAY.md", monkeypatch, capsys)

    def test_documented_gateway_counters_match_the_code(self):
        text = (DOCS / "GATEWAY.md").read_text()
        documented = set(
            re.findall(r"`(gateway\.[a-z_.]+[a-z_])`", text)
        )
        assert documented, "the observability section went missing"
        TestObservabilityGuide._assert_counters_recorded(documented)


class TestExampleData:
    def test_shipped_ontology_loads(self):
        from repro.ontology import turtle

        ontology = turtle.load(ROOT / "examples" / "data" / "nyc.ttl")
        assert len(ontology) > 10
        assert ontology.vocabulary.has_relation("doAt")

    def test_shipped_query_validates_against_shipped_ontology(self):
        from repro.oassisql import validate
        from repro.ontology import turtle

        ontology = turtle.load(ROOT / "examples" / "data" / "nyc.ttl")
        query = parse_query(
            (ROOT / "examples" / "data" / "activities.oql").read_text()
        )
        assert validate(query, ontology) == []

    def test_shipped_history_parses(self):
        from repro.crowd import PersonalDatabase

        lines = [
            line.strip()
            for line in (ROOT / "examples" / "data" / "history.txt")
            .read_text()
            .splitlines()
            if line.strip() and not line.startswith("#")
        ]
        database = PersonalDatabase.parse(lines)
        assert len(database) == 6

    def test_documented_files_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/LANGUAGE.md", "docs/ARCHITECTURE.md",
                     "docs/PERFORMANCE.md", "docs/TUNING.md",
                     "docs/GATEWAY.md", "docs/MIGRATION.md",
                     "BENCH_perf.json", "BENCH_gateway.json", "Makefile"):
            assert (ROOT / name).exists(), name
