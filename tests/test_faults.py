"""The fault-injection harness: plans, breakers, injection sites, chaos.

Three layers of coverage:

* :class:`FaultPlan` / :class:`FaultSpec` — deterministic decisions,
  declaration-order priority, ``after``/``limit`` windows, validation;
* :class:`CircuitBreaker` — the closed → open → half-open state machine,
  including the aborted-probe release;
* the manager's injection sites and quarantine behaviour under a fake
  clock, plus the end-to-end seeded chaos campaigns of
  :mod:`repro.faults.chaos` (every durability invariant checked).
"""

import pytest

from repro import OassisEngine
from repro.engine import AnswerOutcome
from repro.faults import (
    BreakerState,
    CircuitBreaker,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    MALFORMED_SUPPORT,
    chaos_plan,
    run_chaos_campaign,
    run_chaos_once,
)
from repro.service.simulation import DOMAINS


@pytest.fixture(scope="module")
def demo():
    return DOMAINS["demo"]()


@pytest.fixture(scope="module")
def engine(demo):
    return OassisEngine(demo.ontology)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture()
def clock():
    return FakeClock()


class TestFaultSpec:
    def test_rejects_unknown_site(self):
        with pytest.raises(ValueError):
            FaultSpec("nowhere", FaultKind.TIMEOUT)

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            FaultSpec("member.answer", FaultKind.TIMEOUT, rate=1.5)

    def test_rejects_negative_windows(self):
        with pytest.raises(ValueError):
            FaultSpec("member.answer", FaultKind.TIMEOUT, after=-1)
        with pytest.raises(ValueError):
            FaultSpec("member.answer", FaultKind.TIMEOUT, limit=-1)


class TestFaultPlan:
    def _probe(self, plan, rounds=40):
        decisions = []
        for _ in range(rounds):
            for member in ("m0", "m1", "m2"):
                decisions.append(plan.decide("member.answer", member))
        return decisions

    def test_same_seed_same_decisions(self):
        specs = (
            FaultSpec("member.answer", FaultKind.TIMEOUT, rate=0.3),
            FaultSpec("member.answer", FaultKind.DUPLICATE, rate=0.2),
        )
        first = self._probe(FaultPlan(specs, seed=7))
        second = self._probe(FaultPlan(specs, seed=7))
        assert first == second
        assert any(d is not None for d in first)

    def test_different_seed_different_decisions(self):
        specs = (FaultSpec("member.answer", FaultKind.TIMEOUT, rate=0.3),)
        assert self._probe(FaultPlan(specs, seed=0)) != self._probe(
            FaultPlan(specs, seed=1)
        )

    def test_declaration_order_wins(self):
        plan = FaultPlan(
            (
                FaultSpec("member.answer", FaultKind.MALFORMED, member="bad"),
                FaultSpec("member.answer", FaultKind.TIMEOUT, rate=1.0),
            ),
            seed=0,
        )
        assert plan.decide("member.answer", "bad") is FaultKind.MALFORMED
        assert plan.decide("member.answer", "good") is FaultKind.TIMEOUT

    def test_after_and_limit_windows(self):
        plan = FaultPlan(
            (
                FaultSpec(
                    "member.answer", FaultKind.DEPART, after=2, limit=1
                ),
            ),
            seed=0,
        )
        decisions = [plan.decide("member.answer", "m") for _ in range(6)]
        assert decisions == [
            None, None, FaultKind.DEPART, None, None, None
        ]
        assert plan.injected() == {"departure": 1}

    def test_unknown_site_raises(self):
        with pytest.raises(ValueError):
            FaultPlan().decide("nowhere")

    def test_inactive_site_fast_path(self):
        plan = FaultPlan(
            (FaultSpec("member.answer", FaultKind.TIMEOUT),), seed=0
        )
        assert plan.decide("manager.dispatch", "m") is None
        assert plan.total_injected() == 0

    def test_maybe_crash_raises_only_on_crash(self):
        plan = FaultPlan(
            (FaultSpec("runner.worker", FaultKind.CRASH, limit=1),), seed=0
        )
        with pytest.raises(InjectedCrash):
            plan.maybe_crash("runner.worker", "m")
        plan.maybe_crash("runner.worker", "m")  # limit hit: no raise

    def test_chaos_plan_plants_the_bad_member(self):
        plan = chaos_plan(seed=0, bad_member="m0", departing_member="m5")
        assert plan.decide("member.answer", "m0") is FaultKind.MALFORMED
        assert MALFORMED_SUPPORT > 1.0


class TestCircuitBreaker:
    def _breaker(self, **kw):
        kw.setdefault("window", 4)
        kw.setdefault("failure_threshold", 0.5)
        kw.setdefault("cooldown", 5.0)
        kw.setdefault("min_events", 4)
        return CircuitBreaker(**kw)

    def test_trips_after_error_window_fills(self):
        breaker = self._breaker()
        for _ in range(3):
            breaker.record_failure(0.0)
            assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(0.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 1

    def test_successes_keep_it_closed(self):
        breaker = self._breaker()
        breaker.record_failure(0.0)
        for _ in range(3):
            breaker.record_success(0.0)
        breaker.record_failure(0.0)  # window holds 1 failure in 4: rate 0.25
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(0.0)

    def test_half_open_probe_success_closes(self):
        breaker = self._breaker()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert not breaker.allow(1.0)  # still cooling down
        assert breaker.allow(5.0)  # cooldown elapsed: half-open probe
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(5.0)  # only one probe at a time
        breaker.record_success(5.1)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_reopens(self):
        breaker = self._breaker()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        breaker.record_failure(5.1)
        assert breaker.state is BreakerState.OPEN
        assert breaker.opened_count == 2
        assert not breaker.allow(5.2)

    def test_aborted_probe_releases_the_slot(self):
        breaker = self._breaker()
        for _ in range(4):
            breaker.record_failure(0.0)
        assert breaker.allow(5.0)
        assert not breaker.allow(5.0)
        breaker.probe_aborted()  # the probe never dispatched a question
        assert breaker.allow(5.0)  # slot released: probing may continue


def make_manager(engine, clock, **options):
    options.setdefault("question_timeout", 10.0)
    options.setdefault("backoff_base", 1.0)
    return engine.session_manager(clock=clock, **options)


class TestManagerFaultSites:
    def test_dispatch_stall(self, engine, demo, clock):
        plan = FaultPlan(
            (FaultSpec("manager.dispatch", FaultKind.TIMEOUT, limit=1),),
            seed=0,
        )
        manager = make_manager(engine, clock, faults=plan)
        manager.create_session(demo.query(0.4), session_id="q")
        manager.attach_member("a")
        assert manager.next_batch("a", k=1) == []  # injected stall
        assert len(manager.next_batch("a", k=1)) == 1

    def test_duplicate_injection_is_dropped_stale(self, engine, demo, clock):
        plan = FaultPlan(
            (FaultSpec("manager.submit", FaultKind.DUPLICATE, limit=1),),
            seed=0,
        )
        manager = make_manager(engine, clock, faults=plan)
        session = manager.create_session(
            demo.query(0.4), session_id="q", sample_size=1
        )
        manager.attach_member("a")
        [question] = manager.next_batch("a", k=1)
        assert manager.submit(question, 1.0) is AnswerOutcome.RECORDED
        # the injected second application must not double-record
        answers = session.cache.answers_for(question.assignment)
        assert answers == [("a", 1.0)]

    def test_malformed_support_rejected_then_retried(self, engine, demo, clock):
        manager = make_manager(engine, clock, max_attempts=5)
        session = manager.create_session(
            demo.query(0.4), session_id="q", sample_size=1
        )
        manager.attach_member("a")
        [question] = manager.next_batch("a", k=1)
        assert manager.submit(question, MALFORMED_SUPPORT) is (
            AnswerOutcome.REJECTED
        )
        assert session.cache.answers_for(question.assignment) == []
        clock.advance(2.0)  # ride out the rejection backoff
        [retry] = manager.next_batch("a", k=1)
        assert retry.assignment == question.assignment
        assert retry.attempt == 2
        assert manager.submit(retry, float("nan")) is AnswerOutcome.REJECTED
        clock.advance(4.0)
        [retry] = manager.next_batch("a", k=1)
        assert manager.submit(retry, 1.0) is AnswerOutcome.RECORDED
        assert session.cache.answers_for(question.assignment) == [("a", 1.0)]

    def test_breaker_quarantines_then_probes(self, engine, demo, clock):
        manager = make_manager(
            engine,
            clock,
            max_attempts=10,
            breaker_window=4,
            breaker_cooldown=5.0,
        )
        manager.create_session(demo.query(0.4), session_id="q", sample_size=2)
        manager.attach_member("bad")
        manager.attach_member("good")
        assert manager.breaker_state("bad") is BreakerState.CLOSED
        for round_number in range(4):
            [question] = manager.next_batch("bad", k=1)
            assert manager.submit(question, MALFORMED_SUPPORT) is (
                AnswerOutcome.REJECTED
            )
            if round_number < 3:
                clock.advance(40.0)  # clear the rejection backoff window
        assert manager.breaker_state("bad") is BreakerState.OPEN
        assert manager.breaker_opened_counts() == {"bad": 1, "good": 0}
        assert manager.next_batch("bad", k=1) == []  # short-circuited
        # the good member is unaffected by the bad member's quarantine
        assert len(manager.next_batch("good", k=1)) == 1
        # ride out both the 5s cooldown and the attempt-4 retry backoff
        clock.advance(10.0)
        probe = manager.next_batch("bad", k=4)
        assert len(probe) == 1
        assert manager.breaker_state("bad") is BreakerState.HALF_OPEN
        assert manager.submit(probe[0], 1.0) is AnswerOutcome.RECORDED
        assert manager.breaker_state("bad") is BreakerState.CLOSED

    def test_detach_drops_the_breaker(self, engine, demo, clock):
        manager = make_manager(engine, clock, breaker_window=4)
        manager.create_session(demo.query(0.4), session_id="q")
        manager.attach_member("a")
        assert manager.breaker_state("a") is BreakerState.CLOSED
        manager.detach_member("a")
        assert manager.breaker_state("a") is None


class TestChaosCampaign:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_seeded_run_holds_every_invariant(self, seed):
        report = run_chaos_once(
            seed=seed, sessions=3, workers=3, crashes=1, max_runtime=30.0
        )
        assert report.violations == []
        assert report.completed_sessions == 3
        assert report.answers_recorded > 0
        assert report.faults_injected.get("malformed", 0) > 0
        assert report.breaker_opened.get("m0", 0) >= 1

    def test_campaign_aggregates_and_journals(self, tmp_path):
        campaign = run_chaos_campaign(
            (0, 1),
            sessions=2,
            workers=2,
            crashes=1,
            durable_dir=str(tmp_path),
            max_runtime=30.0,
        )
        assert campaign["ok"] is True
        assert campaign["seeds"] == [0, 1]
        assert campaign["total_faults_injected"] > 0
        assert len(campaign["reports"]) == 2
        # each seed journaled into its own subdirectory
        for seed in (0, 1):
            wals = list((tmp_path / f"seed-{seed}").glob("*.wal"))
            assert len(wals) == 2

    def test_crowd_too_small_for_the_planted_faults(self):
        with pytest.raises(ValueError):
            run_chaos_once(seed=0, crowd_size=4, sample_size=3)
