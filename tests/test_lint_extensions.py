"""Stale-suppression detection and lint baselines.

A ``# repro-lint: disable=RULE`` comment that no longer suppresses
anything is itself an error (dead suppressions hide future regressions);
the ``--baseline`` flow lets CI adopt the deep rules on a tree with
known findings and fail only on *new* ones.
"""

import json
from pathlib import Path

from repro.analysis.lint import (
    finding_fingerprint,
    load_baseline,
    main,
    run_lint,
    write_baseline,
)

BARE_EXCEPT = "try:\n    pass\nexcept:\n    pass\n"


def write(tmp_path, rel, source):
    path = tmp_path / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


def rules_of(result):
    return [finding.rule for finding in result.findings]


class TestStaleSuppressions:
    def test_used_suppression_is_silent(self, tmp_path):
        write(
            tmp_path,
            "mod.py",
            "try:\n    pass\nexcept:  # repro-lint: disable=bare-except\n    pass\n",
        )
        result = run_lint([str(tmp_path)])
        assert result.findings == []
        assert result.suppressed == 1

    def test_unused_suppression_is_an_error(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1  # repro-lint: disable=mutable-default\n")
        result = run_lint([str(tmp_path)])
        assert rules_of(result) == ["stale-suppression"]
        assert "no longer suppresses any finding" in result.findings[0].message
        assert result.findings[0].line == 1

    def test_unknown_rule_token_is_an_error(self, tmp_path):
        write(tmp_path, "mod.py", "x = 1  # repro-lint: disable=no-such-rule\n")
        result = run_lint([str(tmp_path)])
        assert rules_of(result) == ["stale-suppression"]
        assert "unknown rule" in result.findings[0].message

    def test_docstring_text_is_not_a_suppression(self, tmp_path):
        # the collector is tokenize-based: the marker only counts inside
        # a real comment, not inside string literals documenting it
        write(
            tmp_path,
            "mod.py",
            '"""Example: `# repro-lint: disable=bare-except` in docs."""\nx = 1\n',
        )
        assert run_lint([str(tmp_path)]).findings == []

    def test_file_scope_suppression_used_and_stale(self, tmp_path):
        used = write(
            tmp_path,
            "used.py",
            "# repro-lint: disable-file=bare-except\n" + BARE_EXCEPT,
        )
        result = run_lint([str(used)])
        assert result.findings == [] and result.suppressed == 1
        used.write_text(
            "# repro-lint: disable-file=bare-except\nx = 1\n", encoding="utf-8"
        )
        result = run_lint([str(used)])
        assert rules_of(result) == ["stale-suppression"]
        assert "disable-file=bare-except" in result.findings[0].message

    def test_deep_rule_token_assessed_only_under_deep(self, tmp_path):
        # a repro fixture package, so --deep can discover a root
        root = tmp_path / "repro"
        root.mkdir()
        (root / "__init__.py").write_text("", encoding="utf-8")
        (root / "mod.py").write_text(
            "x = 1  # repro-lint: disable=wire-taint\n", encoding="utf-8"
        )
        # without --deep the token cannot be judged: stay silent
        assert run_lint([str(root)]).findings == []
        result = run_lint([str(root)], deep=True)
        assert rules_of(result) == ["stale-suppression"]

    def test_rule_selection_skips_staleness(self, tmp_path):
        # a partial run cannot know the suppression is dead
        write(tmp_path, "mod.py", "x = 1  # repro-lint: disable=bare-except\n")
        result = run_lint([str(tmp_path)], rule_ids=["unused-import"])
        assert result.findings == []

    def test_stale_suppressions_fail_the_exit_code(self, tmp_path, capsys):
        write(tmp_path, "mod.py", "x = 1  # repro-lint: disable=bare-except\n")
        assert main([str(tmp_path)]) == 1
        assert "stale-suppression" in capsys.readouterr().out


class TestBaseline:
    def seeded(self, tmp_path):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        return tmp_path / "baseline.json"

    def test_fingerprint_is_line_stable(self, tmp_path):
        # moving a finding must not invalidate the baseline entry
        write(tmp_path, "mod.py", BARE_EXCEPT)
        first = run_lint([str(tmp_path)]).findings[0]
        write(tmp_path, "mod.py", "x = 1\n" + BARE_EXCEPT)
        moved = run_lint([str(tmp_path)]).findings[0]
        assert first.line != moved.line
        assert finding_fingerprint(first) == finding_fingerprint(moved)

    def test_write_and_load_roundtrip(self, tmp_path):
        baseline = self.seeded(tmp_path)
        findings = run_lint([str(tmp_path)]).findings
        write_baseline(baseline, findings)
        payload = json.loads(baseline.read_text(encoding="utf-8"))
        assert payload["version"] == 1
        assert load_baseline(baseline) == {
            finding_fingerprint(f) for f in findings
        }

    def test_baselined_findings_pass_new_ones_fail(self, tmp_path, capsys):
        baseline = self.seeded(tmp_path)
        assert main([str(tmp_path), "--write-baseline", str(baseline)]) == 0
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out
        # a fresh violation in another file is not covered
        write(tmp_path, "mod2.py", BARE_EXCEPT)
        assert main([str(tmp_path), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "mod2.py" in out and "mod.py:" not in out.replace("mod2.py", "")

    def test_missing_baseline_file_is_a_usage_error(self, tmp_path, capsys):
        write(tmp_path, "mod.py", BARE_EXCEPT)
        assert main([str(tmp_path), "--baseline", str(tmp_path / "no.json")]) == 2

    def test_json_report_counts_baselined(self, tmp_path, capsys):
        baseline = self.seeded(tmp_path)
        main([str(tmp_path), "--write-baseline", str(baseline)])
        capsys.readouterr()
        assert (
            main([str(tmp_path), "--baseline", str(baseline), "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["baselined"] == 1
        assert payload["errors"] == 0

    def test_list_rules_includes_the_deep_catalogue(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "async-blocking-transitive" in out
        assert "(deep)" in out
