"""Unit tests for ClassificationState and the Observation 4.4 inference."""

import pytest

from repro.assignments import Assignment, ExplicitDAG, QueryAssignmentSpace
from repro.datasets import running_example
from repro.mining import ClassificationState, Status
from repro.oassisql import parse_query
from repro.vocabulary import Element


@pytest.fixture()
def chain_dag() -> ExplicitDAG:
    dag = ExplicitDAG()
    for a, b in [(0, 1), (1, 2), (2, 3)]:
        dag.add_edge(a, b)
    return dag


class TestFastStrategy:
    def test_significant_classifies_down_set(self, chain_dag):
        state = ClassificationState(chain_dag)
        state.mark_significant(2)
        assert state.status(0) is Status.SIGNIFICANT
        assert state.status(1) is Status.SIGNIFICANT
        assert state.status(2) is Status.SIGNIFICANT
        assert state.status(3) is Status.UNKNOWN

    def test_insignificant_classifies_up_set(self, chain_dag):
        state = ClassificationState(chain_dag)
        state.mark_insignificant(1)
        assert state.status(0) is Status.UNKNOWN
        assert state.status(1) is Status.INSIGNIFICANT
        assert state.status(3) is Status.INSIGNIFICANT

    def test_is_classified_helpers(self, chain_dag):
        state = ClassificationState(chain_dag)
        state.mark_significant(0)
        assert state.is_significant(0)
        assert state.is_classified(0)
        assert not state.is_classified(1)
        assert not state.is_insignificant(0)


class TestWitnessStrategy:
    @pytest.fixture()
    def lazy_space(self) -> QueryAssignmentSpace:
        ontology = running_example.build_ontology()
        query = parse_query(running_example.FRAGMENT_QUERY)
        return QueryAssignmentSpace(ontology, query, max_values_per_var=1)

    def test_down_set_inference(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        specific = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        general = Assignment.make(
            vocab, {"x": {Element("Park")}, "y": {Element("Sport")}}
        )
        state.mark_significant(specific)
        assert state.status(general) is Status.SIGNIFICANT
        assert state.status(specific) is Status.SIGNIFICANT

    def test_up_set_inference(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        general = Assignment.make(
            vocab, {"x": {Element("Outdoor")}, "y": {Element("Water Sport")}}
        )
        specific = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Swimming")}}
        )
        state.mark_insignificant(general)
        assert state.status(specific) is Status.INSIGNIFICANT

    def test_witness_antichain_maintenance(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        general = Assignment.make(
            vocab, {"x": {Element("Park")}, "y": {Element("Sport")}}
        )
        specific = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        state.mark_significant(general)
        state.mark_significant(specific)
        # the general witness is subsumed: antichain keeps only the specific
        assert state.significant_witnesses() == [specific]
        # marking an already-implied node is a no-op
        state.mark_significant(general)
        assert state.significant_witnesses() == [specific]

    def test_incomparable_statuses_independent(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        biking = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        monkey = Assignment.make(
            vocab, {"x": {Element("Bronx Zoo")}, "y": {Element("Feed a monkey")}}
        )
        state.mark_significant(biking)
        assert state.status(monkey) is Status.UNKNOWN


class TestIncrementalMspTracker:
    """MspTracker keeps a shrinking pending frontier per candidate."""

    def _diamond(self):
        dag = ExplicitDAG()
        for a, b in [(0, 1), (0, 2), (1, 3), (2, 3)]:
            dag.add_edge(a, b)
        return dag

    def test_confirms_when_frontier_drains(self):
        from repro.mining.trace import MspTracker

        dag = self._diamond()
        state = ClassificationState(dag)
        tracker = MspTracker(dag, state)
        state.mark_significant(0)
        tracker.note_significant(0)
        tracker.refresh(force=True)
        assert tracker.confirmed() == set()  # successors 1, 2 undecided

        state.mark_insignificant(1)
        tracker.refresh(force=True)
        assert tracker.confirmed() == set()  # 2 still pending

        state.mark_insignificant(2)
        tracker.refresh(force=True)
        assert tracker.confirmed() == {0}
        assert tracker.counts()[0] == 1

    def test_frontier_shrinks_monotonically(self):
        from repro.mining.trace import MspTracker

        dag = self._diamond()
        state = ClassificationState(dag)
        tracker = MspTracker(dag, state)
        state.mark_significant(0)
        tracker.note_significant(0)
        assert sorted(tracker._pending[0]) == [1, 2]
        state.mark_insignificant(1)
        tracker.refresh(force=True)
        assert tracker._pending[0] == [2]  # 1 left the frontier for good

    def test_note_new_successor_reopens_candidate(self):
        from repro.mining.trace import MspTracker

        dag = self._diamond()
        state = ClassificationState(dag)
        tracker = MspTracker(dag, state)
        state.mark_significant(0)
        tracker.note_significant(0)
        state.mark_insignificant(1)
        state.mark_insignificant(2)

        # the lattice grows mid-run (e.g. a crowd-proposed MORE extension)
        # before the frontier drained: the candidate must wait for the new
        # successor too
        dag.add_edge(0, 4)
        tracker.note_new_successor(0, 4)
        tracker.refresh(force=True)
        assert tracker.confirmed() == set()

        state.mark_insignificant(4)
        tracker.refresh(force=True)
        assert tracker.confirmed() == {0}

    def test_note_new_successor_ignores_confirmed_candidates(self):
        from repro.mining.trace import MspTracker

        dag = self._diamond()
        state = ClassificationState(dag)
        tracker = MspTracker(dag, state)
        state.mark_significant(0)
        tracker.note_significant(0)
        state.mark_insignificant(1)
        state.mark_insignificant(2)
        tracker.refresh(force=True)
        assert tracker.confirmed() == {0}
        # confirmation is final: late successors don't resurrect the frontier
        tracker.note_new_successor(0, 4)
        tracker.refresh(force=True)
        assert tracker.confirmed() == {0}

    def test_stride_throttles_but_force_overrides(self):
        from repro.mining.trace import MspTracker

        dag = self._diamond()
        state = ClassificationState(dag)
        tracker = MspTracker(dag, state, stride=10)
        state.mark_significant(0)
        tracker.note_significant(0)
        tracker.refresh()  # call 1 runs (1 % 10 == 1)
        state.mark_insignificant(1)
        state.mark_insignificant(2)
        tracker.refresh()  # throttled
        assert tracker.confirmed() == set()
        tracker.refresh(force=True)
        assert tracker.confirmed() == {0}
