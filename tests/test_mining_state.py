"""Unit tests for ClassificationState and the Observation 4.4 inference."""

import pytest

from repro.assignments import Assignment, ExplicitDAG, QueryAssignmentSpace
from repro.datasets import running_example
from repro.mining import ClassificationState, Status
from repro.oassisql import parse_query
from repro.vocabulary import Element


@pytest.fixture()
def chain_dag() -> ExplicitDAG:
    dag = ExplicitDAG()
    for a, b in [(0, 1), (1, 2), (2, 3)]:
        dag.add_edge(a, b)
    return dag


class TestFastStrategy:
    def test_significant_classifies_down_set(self, chain_dag):
        state = ClassificationState(chain_dag)
        state.mark_significant(2)
        assert state.status(0) is Status.SIGNIFICANT
        assert state.status(1) is Status.SIGNIFICANT
        assert state.status(2) is Status.SIGNIFICANT
        assert state.status(3) is Status.UNKNOWN

    def test_insignificant_classifies_up_set(self, chain_dag):
        state = ClassificationState(chain_dag)
        state.mark_insignificant(1)
        assert state.status(0) is Status.UNKNOWN
        assert state.status(1) is Status.INSIGNIFICANT
        assert state.status(3) is Status.INSIGNIFICANT

    def test_is_classified_helpers(self, chain_dag):
        state = ClassificationState(chain_dag)
        state.mark_significant(0)
        assert state.is_significant(0)
        assert state.is_classified(0)
        assert not state.is_classified(1)
        assert not state.is_insignificant(0)


class TestWitnessStrategy:
    @pytest.fixture()
    def lazy_space(self) -> QueryAssignmentSpace:
        ontology = running_example.build_ontology()
        query = parse_query(running_example.FRAGMENT_QUERY)
        return QueryAssignmentSpace(ontology, query, max_values_per_var=1)

    def test_down_set_inference(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        specific = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        general = Assignment.make(
            vocab, {"x": {Element("Park")}, "y": {Element("Sport")}}
        )
        state.mark_significant(specific)
        assert state.status(general) is Status.SIGNIFICANT
        assert state.status(specific) is Status.SIGNIFICANT

    def test_up_set_inference(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        general = Assignment.make(
            vocab, {"x": {Element("Outdoor")}, "y": {Element("Water Sport")}}
        )
        specific = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Swimming")}}
        )
        state.mark_insignificant(general)
        assert state.status(specific) is Status.INSIGNIFICANT

    def test_witness_antichain_maintenance(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        general = Assignment.make(
            vocab, {"x": {Element("Park")}, "y": {Element("Sport")}}
        )
        specific = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        state.mark_significant(general)
        state.mark_significant(specific)
        # the general witness is subsumed: antichain keeps only the specific
        assert state.significant_witnesses() == [specific]
        # marking an already-implied node is a no-op
        state.mark_significant(general)
        assert state.significant_witnesses() == [specific]

    def test_incomparable_statuses_independent(self, lazy_space):
        vocab = lazy_space.vocabulary
        state = ClassificationState(lazy_space)
        biking = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        monkey = Assignment.make(
            vocab, {"x": {Element("Bronx Zoo")}, "y": {Element("Feed a monkey")}}
        )
        state.mark_significant(biking)
        assert state.status(monkey) is Status.UNKNOWN
