"""End-to-end checks against the paper's own numbers (Examples 2.7–4.6)."""

from fractions import Fraction

import pytest

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.datasets import running_example
from repro.mining import vertical_mine
from repro.oassisql import parse_query
from repro.ontology import Fact, fact_set
from repro.vocabulary import Element
from repro.vocabulary.terms import ANY_ELEMENT


def E(name):
    return Element(name)


@pytest.fixture(scope="module")
def setting():
    ontology = running_example.build_ontology()
    databases = running_example.build_personal_databases()
    return ontology, databases


class TestExample27:
    def test_support_u1(self, setting):
        ontology, dbs = setting
        fs = fact_set(("Pasta", "eatAt", "Pine"), ("Activity", "doAt", "Bronx Zoo"))
        assert dbs["u1"].support_fraction(fs, ontology.vocabulary) == Fraction(1, 3)


class TestExample31:
    def test_phi16_significant_at_04(self, setting):
        ontology, dbs = setting
        vocab = ontology.vocabulary
        phi16 = fact_set(
            ("Biking", "doAt", "Central Park"),
            (ANY_ELEMENT, "eatAt", "Maoz Veg"),
        )
        s1 = dbs["u1"].support_fraction(phi16, vocab)
        s2 = dbs["u2"].support_fraction(phi16, vocab)
        assert (s1 + s2) / 2 == Fraction(5, 12)
        assert (s1 + s2) / 2 >= Fraction(2, 5)  # threshold 0.4

    def test_phi20_insignificant_at_04(self, setting):
        ontology, dbs = setting
        vocab = ontology.vocabulary
        phi20 = fact_set(
            ("Baseball", "doAt", "Central Park"),
            (ANY_ELEMENT, "eatAt", "Maoz Veg"),
        )
        s1 = dbs["u1"].support_fraction(phi20, vocab)
        s2 = dbs["u2"].support_fraction(phi20, vocab)
        assert (s1 + s2) / 2 == Fraction(1, 3)
        assert (s1 + s2) / 2 < Fraction(2, 5)


class TestExample32:
    def test_more_extension_significant(self, setting):
        ontology, dbs = setting
        vocab = ontology.vocabulary
        extended = fact_set(
            ("Biking", "doAt", "Central Park"),
            (ANY_ELEMENT, "eatAt", "Maoz Veg"),
            ("Rent Bikes", "doAt", "Boathouse"),
        )
        s1 = dbs["u1"].support_fraction(extended, vocab)
        s2 = dbs["u2"].support_fraction(extended, vocab)
        assert (s1 + s2) / 2 == Fraction(5, 12)

    def test_biking_plus_ballgame_not_significant(self, setting):
        ontology, dbs = setting
        vocab = ontology.vocabulary
        combo = fact_set(
            ("Biking", "doAt", "Central Park"),
            ("Ball Game", "doAt", "Central Park"),
            (ANY_ELEMENT, "eatAt", "Maoz Veg"),
        )
        s1 = dbs["u1"].support_fraction(combo, vocab)
        s2 = dbs["u2"].support_fraction(combo, vocab)
        assert (s1 + s2) / 2 < Fraction(2, 5)


class TestExample46VerticalOnUavg:
    """Run Algorithm 1 for u_avg (the average of u1 and u2) on the fragment."""

    @pytest.fixture(scope="class")
    def result(self, setting):
        ontology, dbs = setting
        vocab = ontology.vocabulary
        query = parse_query(running_example.FRAGMENT_QUERY)
        space = QueryAssignmentSpace(ontology, query, max_values_per_var=2)

        def u_avg(node):
            facts = space.instantiate(node)
            s1 = dbs["u1"].support(facts, vocab)
            s2 = dbs["u2"].support(facts, vocab)
            return (s1 + s2) / 2

        return space, vertical_mine(space, u_avg, 0.4)

    def test_ball_game_at_central_park_is_msp(self, result):
        space, mined = result
        vocab = space.vocabulary
        # Node 17 of Figure 3: (Central Park, Ball Game).  Its successors
        # Basketball (avg 1/4) and Baseball (avg 1/3) are below 0.4, while
        # Ball Game itself has avg (2/6+1/2)/2 = 5/12 >= 0.4.
        node17 = Assignment.make(
            vocab, {"x": {E("Central Park")}, "y": {E("Ball Game")}}
        )
        assert node17 in mined.msps

    def test_biking_at_central_park_is_msp(self, result):
        space, mined = result
        vocab = space.vocabulary
        node16 = Assignment.make(vocab, {"x": {E("Central Park")}, "y": {E("Biking")}})
        assert node16 in mined.msps

    def test_feed_a_monkey_at_bronx_zoo_is_msp(self, result):
        space, mined = result
        vocab = space.vocabulary
        monkey = Assignment.make(
            vocab, {"x": {E("Bronx Zoo")}, "y": {E("Feed a monkey")}}
        )
        assert monkey in mined.msps

    def test_all_msps_pairwise_incomparable(self, result):
        space, mined = result
        for a in mined.msps:
            for b in mined.msps:
                if a != b:
                    assert not space.leq(a, b)

    def test_msps_match_brute_force(self, result, setting):
        from repro.mining import brute_force_msps

        ontology, dbs = setting
        vocab = ontology.vocabulary
        space, mined = result

        def significant(node):
            facts = space.instantiate(node)
            s1 = dbs["u1"].support(facts, vocab)
            s2 = dbs["u2"].support(facts, vocab)
            return (s1 + s2) / 2 >= 0.4

        expected = set(brute_force_msps(space, significant, valid_only=False))
        assert set(mined.msps) == expected

    def test_valid_msps_subset(self, result):
        space, mined = result
        assert set(mined.valid_msps) <= set(mined.msps)
        for msp in mined.valid_msps:
            assert space.is_valid(msp)

    def test_questions_fewer_than_space(self, result):
        space, mined = result
        assert mined.questions < len(space.all_nodes())
