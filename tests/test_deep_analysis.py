"""The whole-program pass: effect inference, deep rules, cache, explain.

Fixture tests write a miniature ``repro`` package under ``tmp_path``
(the deep rules key on ``repro/...`` path prefixes) and assert each rule
fires with a witness call chain — and stays silent on the sanitized
counterpart.  The real source tree must come out clean, and the static
lock-order graph must be a superset of what the dynamic
:mod:`~repro.analysis.lockcheck` checker observes on a real serving run
(the cross-validation contract of docs/ANALYSIS.md).
"""

import io
from pathlib import Path

import pytest

from repro.analysis import lockcheck
from repro.analysis.deep import (
    RULE_ANNOTATION,
    RULE_ASYNC_BLOCKING,
    RULE_DETERMINISM,
    RULE_LOCK_ORDER,
    RULE_WIRE_TAINT,
    analyze,
    explain_function,
    run_deep,
)
from repro.analysis.effects import EFFECT_BLOCKING_IO, EFFECT_WALL_CLOCK

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

GATEWAY_HTTP = """\
import time


def slow_helper():
    time.sleep(0.1)


async def handler():
    slow_helper()


async def direct():
    time.sleep(0.1)


class GatewayApp:
    def submit_answer(self, payload):
        return payload


class Message:
    @classmethod
    def from_wire(cls, payload):
        return cls()


def route(app: GatewayApp, message):
    return app.submit_answer(message)


def clean_route(app: GatewayApp, message):
    decoded = Message.from_wire(message)
    return app.submit_answer(decoded)
"""

SERVICE_LOCKS = """\
from repro.analysis import named_lock


class Manager:
    def __init__(self):
        self._lock = named_lock("service.manager")

    def submit(self, session):
        with self._lock:
            return session.poke()


class Session:
    def __init__(self):
        self.lock = named_lock("service.session")

    def poke(self):
        with self.lock:
            return 1
"""

MINING_ALGO = """\
import time


def _stamp():
    return time.time()


def mine(data):
    return _stamp()
"""


def write_fixture(tmp_path, files):
    """A miniature ``repro`` package; returns its root directory."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source, encoding="utf-8")
        for parent in path.relative_to(root).parents:
            init = root / parent / "__init__.py"
            if not init.exists():
                init.write_text("", encoding="utf-8")
    return root


@pytest.fixture()
def violating_tree(tmp_path):
    return write_fixture(
        tmp_path,
        {
            "gateway/http.py": GATEWAY_HTTP,
            "service/locks.py": SERVICE_LOCKS,
            "mining/algo.py": MINING_ALGO,
        },
    )


@pytest.fixture(scope="session")
def real_analysis():
    """One effect analysis of the real tree, shared across the module."""
    return analyze(REPO_SRC / "repro")


@pytest.fixture(scope="session")
def real_result():
    return run_deep([str(REPO_SRC / "repro")])


def by_rule(result, rule):
    return [f for f in result.findings if f.rule == rule]


class TestEffectInference:
    def test_transitive_blocking_io_with_witness_chain(self, violating_tree):
        analysis = analyze(violating_tree)
        handler = "repro.gateway.http.handler"
        assert EFFECT_BLOCKING_IO in analysis.effects_of(handler)
        chain = analysis.render_chain(
            analysis.witness_chain(handler, EFFECT_BLOCKING_IO)
        )
        # caller -> callee:line [primitive@line]
        assert chain == (
            "gateway.http.handler -> gateway.http.slow_helper:9 "
            "[time.sleep@5]"
        )

    def test_allow_annotation_masks_the_visible_effect(self, tmp_path):
        root = write_fixture(
            tmp_path,
            {
                "service/wal.py": (
                    "import os\n\n\n"
                    "def flush(handle):  # repro-effects: allow=fsync\n"
                    "    os.fsync(handle.fileno())\n\n\n"
                    "def caller(handle):\n"
                    "    flush(handle)\n"
                )
            },
        )
        analysis = analyze(root)
        assert analysis.effects_of("repro.service.wal.flush") == frozenset()
        assert analysis.direct_of("repro.service.wal.flush") == {"fsync"}
        # masked at the source: nothing propagates to the caller either
        assert analysis.effects_of("repro.service.wal.caller") == frozenset()

    def test_unknown_allow_token_is_a_finding(self, tmp_path):
        root = write_fixture(
            tmp_path,
            {
                "service/wal.py": (
                    "def f():  # repro-effects: allow=flurble\n"
                    "    return 0\n"
                )
            },
        )
        result = run_deep([str(root)])
        (finding,) = by_rule(result, RULE_ANNOTATION)
        assert "flurble" in finding.message

    def test_lock_roles_and_reentrancy_from_factories(self, violating_tree):
        analysis = analyze(violating_tree)
        submit = "repro.service.locks.Manager.submit"
        assert analysis.effects_of(submit) >= {
            "lock-acquire[service.manager]",
            "lock-acquire[service.session]",
        }
        assert analysis.reentrant_roles == set()

    def test_fixpoint_terminates_on_recursion(self, tmp_path):
        root = write_fixture(
            tmp_path,
            {
                "mining/rec.py": (
                    "import time\n\n\n"
                    "def ping(n):\n"
                    "    return pong(n - 1) if n else time.time()\n\n\n"
                    "def pong(n):\n"
                    "    return ping(n)\n"
                )
            },
        )
        analysis = analyze(root)
        for name in ("ping", "pong"):
            assert EFFECT_WALL_CLOCK in analysis.effects_of(
                f"repro.mining.rec.{name}"
            )


class TestDeepRules:
    def test_async_blocking_transitive_fires_with_chain(self, violating_tree):
        result = run_deep([str(violating_tree)])
        findings = by_rule(result, RULE_ASYNC_BLOCKING)
        assert [f.line for f in findings] == [8]  # handler, not direct
        assert "slow_helper" in findings[0].message
        assert "time.sleep@5" in findings[0].message

    def test_direct_blocking_call_is_left_to_the_local_rule(
        self, violating_tree
    ):
        # `async def direct()` calls time.sleep itself: the per-file
        # async-blocking-io rule owns length-1 chains
        result = run_deep([str(violating_tree)])
        assert all(
            f.line != 13 for f in by_rule(result, RULE_ASYNC_BLOCKING)
        )

    def test_determinism_transitive_fires_on_public_entry(
        self, violating_tree
    ):
        result = run_deep([str(violating_tree)])
        (finding,) = by_rule(result, RULE_DETERMINISM)
        assert finding.line == 8  # mine(), not the private _stamp helper
        assert "wall-clock" in finding.message
        assert "time.time@5" in finding.message

    def test_lock_order_rediscovers_the_manager_session_contract(
        self, violating_tree
    ):
        # nothing in the fixture names the contract: the rule must infer
        # manager-held -> session-acquired purely from the call graph
        result = run_deep([str(violating_tree)])
        findings = by_rule(result, RULE_LOCK_ORDER)
        assert any(
            "<service.manager> held while acquiring <service.session>"
            in f.message
            for f in findings
        )
        assert ("service.manager", "service.session") in result.lock_pairs

    def test_same_role_nesting_on_plain_lock_fires(self, tmp_path):
        root = write_fixture(
            tmp_path,
            {
                "service/bad.py": (
                    "from repro.analysis import named_lock\n\n\n"
                    "class Deadlocky:\n"
                    "    def __init__(self):\n"
                    "        self._lock = named_lock('service.plain')\n\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            with self._lock:\n"
                    "                return 1\n"
                )
            },
        )
        result = run_deep([str(root)])
        (finding,) = by_rule(result, RULE_LOCK_ORDER)
        assert "same-role lock nesting on <service.plain>" in finding.message

    def test_reentrant_role_re_entry_is_not_an_ordering_event(self, tmp_path):
        root = write_fixture(
            tmp_path,
            {
                "service/ok.py": (
                    "from repro.analysis import named_rlock\n\n\n"
                    "class Careful:\n"
                    "    def __init__(self):\n"
                    "        self._lock = named_rlock('service.careful')\n\n"
                    "    def outer(self):\n"
                    "        with self._lock:\n"
                    "            return self.inner()\n\n"
                    "    def inner(self):\n"
                    "        with self._lock:\n"
                    "            return 1\n"
                )
            },
        )
        result = run_deep([str(root)])
        assert by_rule(result, RULE_LOCK_ORDER) == []
        assert result.lock_pairs == set()

    def test_wire_taint_fires_only_on_the_undecoded_path(
        self, violating_tree
    ):
        result = run_deep([str(violating_tree)])
        (finding,) = by_rule(result, RULE_WIRE_TAINT)
        assert finding.line == 28  # route()'s sink; clean_route is silent
        assert "GatewayApp.submit_answer" in finding.message
        assert "wire parameter 'message'" in finding.message


class TestRealTree:
    def test_real_tree_is_clean(self, real_result):
        assert real_result.findings == []

    def test_static_lock_graph_is_a_superset_of_dynamic_observations(
        self, real_result
    ):
        """docs/ANALYSIS.md: static-lock-order >= dynamic lockcheck.

        Run a real (small) serving campaign under the dynamic checker;
        every (held, acquired) role pair it observes at runtime must
        already be an edge of the statically computed lock graph.
        """
        from repro.service import run_simulation

        with lockcheck.checking() as checker:
            report = run_simulation(
                domain="demo",
                sessions=2,
                workers=2,
                crowd_size=4,
                seed=0,
            )
        assert report["verified"]
        assert checker.observed, "campaign exercised no nested locking"
        assert checker.observed <= real_result.lock_pairs

    def test_static_graph_rediscovers_the_session_cache_edge(
        self, real_result
    ):
        # the one real nested acquisition in the serving stack
        assert ("service.session", "crowd.cache") in real_result.lock_pairs
        # and the documented contract holds statically, both ways
        assert ("service.manager", "service.session") not in real_result.lock_pairs
        assert ("service.session", "service.manager") not in real_result.lock_pairs

    def test_explain_renders_effects_and_callers(self, real_analysis):
        stream = io.StringIO()
        code = explain_function(
            [str(REPO_SRC / "repro")], "SessionManager.submit", stream
        )
        assert code == 0
        text = stream.getvalue()
        assert "lock-acquire[service.manager]" in text
        assert "->" in text  # at least one witness chain rendered

    def test_explain_unknown_function_fails(self):
        stream = io.StringIO()
        assert (
            explain_function(
                [str(REPO_SRC / "repro")], "no.such.function", stream
            )
            == 2
        )


class TestResultCache:
    def test_cache_roundtrip_and_invalidation(self, violating_tree, tmp_path):
        cache = tmp_path / "cache.json"
        first = run_deep([str(violating_tree)], cache_path=cache)
        assert not first.from_cache
        second = run_deep([str(violating_tree)], cache_path=cache)
        assert second.from_cache
        assert [f.message for f in second.findings] == [
            f.message for f in first.findings
        ]
        assert second.lock_pairs == first.lock_pairs
        # any byte change to any analyzed file misses the cache
        target = violating_tree / "mining" / "algo.py"
        target.write_text(
            target.read_text(encoding="utf-8") + "\n# touched\n",
            encoding="utf-8",
        )
        third = run_deep([str(violating_tree)], cache_path=cache)
        assert not third.from_cache

    def test_corrupt_cache_is_a_silent_miss(self, violating_tree, tmp_path):
        cache = tmp_path / "cache.json"
        run_deep([str(violating_tree)], cache_path=cache)
        cache.write_text("{not json", encoding="utf-8")
        result = run_deep([str(violating_tree)], cache_path=cache)
        assert not result.from_cache
        assert result.findings  # re-analysis actually happened
