"""Smoke + trend tests for the experiment harnesses (small configurations)."""

import pytest

from repro.datasets import health
from repro.experiments import (
    ablations,
    distribution,
    multiplicities,
    run_domain,
    run_figure4f,
    run_figure5,
    shape,
)
from repro.experiments.figure4f import render_figure4f
from repro.experiments.figure5 import render_figure5
from repro.experiments.reporting import (
    average_ignoring_none,
    format_table,
    percentage_milestones,
)


class TestReporting:
    def test_format_table(self):
        text = format_table(["a", "b"], [(1, 2.5), ("x", "y")], title="T")
        assert "T" in text
        assert "2.50" in text

    def test_average_ignoring_none(self):
        assert average_ignoring_none([1.0, None, 3.0]) == 2.0
        assert average_ignoring_none([None]) is None

    def test_milestones(self):
        assert percentage_milestones()[-1] == 1.0


class TestFigure5Harness:
    @pytest.fixture(scope="class")
    def results(self):
        return run_figure5(
            msp_fractions=(0.02, 0.10),
            width=120,
            depth=5,
            trials=2,
            milestones=(0.2, 1.0),
        )

    def test_structure(self, results):
        assert set(results) == {0.02, 0.10}
        for per_algorithm in results.values():
            assert set(per_algorithm) == {"vertical", "horizontal", "naive"}

    def test_vertical_faster_than_horizontal_early(self, results):
        # the paper's headline: vertical returns the first answers sooner
        for fraction, per_algorithm in results.items():
            vertical = per_algorithm["vertical"][0.2]
            horizontal = per_algorithm["horizontal"][0.2]
            assert vertical is not None and horizontal is not None
            assert vertical <= horizontal * 1.1

    def test_naive_helped_by_dense_msps(self, results):
        # naive's relative cost at 100% shrinks as MSPs get denser
        sparse = results[0.02]["naive"][1.0] / results[0.02]["vertical"][1.0]
        dense = results[0.10]["naive"][1.0] / results[0.10]["vertical"][1.0]
        assert dense <= sparse * 1.5

    def test_render(self, results):
        text = render_figure5(results)
        assert "Figure 5" in text
        assert "vertical" in text


class TestFigure4fHarness:
    @pytest.fixture(scope="class")
    def results(self):
        return run_figure4f(width=120, depth=5, trials=2, milestones=(0.5, 1.0))

    def test_all_configurations_present(self, results):
        assert "100% closed" in results
        assert "100% special." in results

    def test_specialization_does_not_hurt(self, results):
        closed = results["100% closed"][1.0]
        special = results["100% special."][1.0]
        assert special is not None and closed is not None
        assert special <= closed * 1.1

    def test_pruning_does_not_hurt(self, results):
        closed = results["100% closed"][1.0]
        pruned = results["50% pruning"][1.0]
        assert pruned <= closed * 1.1

    def test_render(self, results):
        assert "Figure 4f" in render_figure4f(results)


class TestFigure4Harness:
    @pytest.fixture(scope="class")
    def domain_run(self):
        return run_domain(
            health.build_dataset(),
            thresholds=(0.2, 0.4),
            crowd_size=12,
            transactions=30,
            max_values_per_var=1,
            max_more_facts=0,
        )

    def test_rows_per_threshold(self, domain_run):
        assert [r.threshold for r in domain_run.rows] == [0.2, 0.4]

    def test_msps_decrease_with_threshold(self, domain_run):
        low, high = domain_run.rows
        assert high.msps <= low.msps

    def test_replay_uses_fewer_answers(self, domain_run):
        low, high = domain_run.rows
        assert high.questions <= low.questions

    def test_beats_baseline(self, domain_run):
        for row in domain_run.rows:
            assert 0 < row.baseline_percent < 100.0

    def test_pace_series_monotone(self, domain_run):
        series = domain_run.pace_series(fractions=(0.5, 1.0))
        for label, points in series.items():
            values = [q for _, q in points if q is not None]
            assert values == sorted(values), label

    def test_tables_render(self, domain_run):
        assert "Crowd statistics" in domain_run.crowd_stats_table()
        assert "Pace" in domain_run.pace_table()


class TestTextExperiments:
    def test_shape_sweep_smoke(self):
        results = shape.run_shape_sweep(
            widths=(60,), depths=(3, 4), msp_fraction=0.05, trials=1
        )
        assert len(results) == 2
        text = shape.render_shape_sweep(results)
        assert "width" in text

    def test_distribution_sweep_smoke(self):
        results = distribution.run_distribution_sweep(
            width=60, depth=3, msp_fraction=0.05, trials=1
        )
        assert len(results) == 6
        assert "placement" in distribution.render_distribution_sweep(results)

    def test_multiplicities_experiment(self):
        rows = multiplicities.run_multiplicities_experiment(
            msp_counts=(3,), max_set_sizes=(1, 2), foods=8, drinks=4
        )
        assert len(rows) == 2
        for row in rows:
            assert row["lazy_nodes"] < row["eager_nodes"]
        assert "lazy" in multiplicities.render_multiplicities(rows)

    def test_multiplicities_questions_track_msps_not_sizes(self):
        rows = multiplicities.run_multiplicities_experiment(
            msp_counts=(2, 6), max_set_sizes=(2,), foods=10, drinks=5
        )
        few, many = rows
        assert many["questions"] >= few["questions"]


class TestAblations:
    def test_expansion_ablation(self):
        rows = ablations.run_expansion_ablation(
            width=60, depth=4, msp_fraction=0.05, trials=1
        )
        assert rows
        text = ablations.render_expansion_ablation(rows)
        assert "expansion" in text

    def test_cache_ablation(self):
        rows = ablations.run_cache_ablation(
            health.build_dataset(), thresholds=(0.2, 0.4), crowd_size=10
        )
        higher = [r for r in rows if r["threshold"] == 0.4]
        assert higher
        assert higher[0]["cached_questions"] <= higher[0]["fresh_questions"]

    def test_decided_generals_ablation(self):
        counts = ablations.run_decided_generals_ablation(
            health.build_dataset(), crowd_size=10
        )
        assert counts["skip decided"] <= counts["re-ask decided"]
