"""Unit tests for crowd member selection and population simulation."""

import random

import pytest

from repro.crowd import (
    CrowdSimulator,
    PlantedPattern,
    consistency_violation_ratio,
    filter_members,
    trust_scores,
)
from repro.datasets import running_example
from repro.ontology import Fact, fact_set


def integer_leq(a, b):
    """A toy order: a ≤ b iff b is a multiple of a (1 ≤ everything)."""
    return b % a == 0


class TestConsistency:
    def test_consistent_answers_score_zero(self):
        # supp(1) >= supp(2) >= supp(4): monotone, no violations
        answers = [(1, 0.9), (2, 0.5), (4, 0.2)]
        assert consistency_violation_ratio(answers, integer_leq) == 0.0

    def test_violation_detected(self):
        answers = [(1, 0.1), (2, 0.9)]  # specialization more frequent: bad
        assert consistency_violation_ratio(answers, integer_leq) == 1.0

    def test_tolerance_absorbs_noise(self):
        answers = [(1, 0.50), (2, 0.52)]
        assert consistency_violation_ratio(answers, integer_leq, tolerance=0.05) == 0.0

    def test_incomparable_pairs_ignored(self):
        answers = [(2, 0.1), (3, 0.9)]  # incomparable
        assert consistency_violation_ratio(answers, integer_leq) == 0.0

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValueError):
            consistency_violation_ratio([], integer_leq, tolerance=-1)

    def test_filter_members_flags_spammer(self):
        rng = random.Random(0)
        good = [(n, 1.0 / n) for n in (1, 2, 4, 8)]
        spam = [(n, rng.random()) for n in (1, 2, 4, 8)] * 3
        flagged = filter_members(
            {"good": good, "spam": spam}, integer_leq, max_violation_ratio=0.2
        )
        assert "good" not in flagged

    def test_trust_scores(self):
        scores = trust_scores(
            {"good": [(1, 0.9), (2, 0.5)], "bad": [(1, 0.1), (2, 0.9)]},
            integer_leq,
        )
        assert scores["good"] == 1.0
        assert scores["bad"] == 0.0


class TestSimulator:
    @pytest.fixture(scope="class")
    def simulator(self):
        vocab = running_example.build_ontology().vocabulary
        patterns = [
            PlantedPattern(
                fact_set(("Biking", "doAt", "Central Park")), 0.6, spread=0.05
            ),
            PlantedPattern(
                fact_set(("Swimming", "doAt", "Central Park")), 0.05, spread=0.02
            ),
        ]
        noise = [Fact("Basketball", "doAt", "Madison Square")]
        return CrowdSimulator(vocab, patterns, noise_facts=noise, seed=42)

    def test_population_size_and_ids(self, simulator):
        members = simulator.build_population(5)
        assert len(members) == 5
        assert [m.member_id for m in members] == ["u1", "u2", "u3", "u4", "u5"]

    def test_deterministic_by_seed(self, simulator):
        a = simulator.build_population(3, transactions=10)
        b = simulator.build_population(3, transactions=10)
        for ma, mb in zip(a, b):
            for ta, tb in zip(ma.database, mb.database):
                assert ta.facts == tb.facts

    def test_planted_support_approximated(self, simulator):
        vocab = simulator.vocabulary
        members = simulator.build_population(30, transactions=60)
        target = fact_set(("Biking", "doAt", "Central Park"))
        average = sum(m.true_support(target) for m in members) / len(members)
        assert average == pytest.approx(0.6, abs=0.1)

    def test_rare_pattern_stays_rare(self, simulator):
        members = simulator.build_population(30, transactions=60)
        rare = fact_set(("Swimming", "doAt", "Central Park"))
        average = sum(m.true_support(rare) for m in members) / len(members)
        assert average < 0.2

    def test_generalizations_at_least_as_frequent(self, simulator):
        vocab = simulator.vocabulary
        members = simulator.build_population(10, transactions=40)
        specific = fact_set(("Biking", "doAt", "Central Park"))
        general = fact_set(("Sport", "doAt", "Central Park"))
        for member in members:
            assert member.true_support(general) >= member.true_support(specific)

    def test_expected_support(self, simulator):
        assert simulator.expected_support(
            fact_set(("Sport", "doAt", "Central Park"))
        ) == pytest.approx(0.6)
        assert simulator.expected_support(
            fact_set(("Pasta", "eatAt", "Pine"))
        ) == 0.0

    def test_invalid_pattern_parameters(self):
        with pytest.raises(ValueError):
            PlantedPattern(fact_set(("A", "doAt", "B")), 1.5)
        with pytest.raises(ValueError):
            PlantedPattern(fact_set(("A", "doAt", "B")), 0.5, spread=-0.1)
