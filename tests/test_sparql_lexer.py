"""Unit tests for the shared tokenizer."""

import pytest

from repro.sparql.lexer import LexError, ParseError, TokenStream, tokenize


class TestTokenize:
    def test_variables_both_sigils(self):
        tokens = tokenize("$x ?y")
        assert [(t.kind, t.text) for t in tokens[:-1]] == [("VAR", "x"), ("VAR", "y")]

    def test_bracketed_names(self):
        tokens = tokenize("<Central Park>")
        assert tokens[0] == tokens[0]._replace(kind="NAME", text="Central Park")

    def test_strings(self):
        tokens = tokenize('"child-friendly"')
        assert tokens[0].kind == "STRING"
        assert tokens[0].text == "child-friendly"

    def test_numbers(self):
        assert tokenize("0.4")[0].kind == "NUMBER"
        assert tokenize("12")[0].kind == "NUMBER"
        assert tokenize(".5")[0].kind == "NUMBER"

    def test_blank_node(self):
        assert tokenize("[]")[0].kind == "LBRACKET_PAIR"
        assert tokenize("[ ]")[0].kind == "LBRACKET_PAIR"

    def test_names_allow_hyphen(self):
        tokens = tokenize("FACT-SETS")
        assert tokens[0].kind == "NAME"
        assert tokens[0].text == "FACT-SETS"

    def test_punctuation(self):
        kinds = [t.kind for t in tokenize(". * + ? { } = >= >")][:-1]
        assert kinds == ["DOT", "STAR", "PLUS", "QMARK", "LBRACE", "RBRACE", "EQ", "GE", "GT"]

    def test_comments_ignored(self):
        tokens = tokenize("A # comment\nB")
        assert [t.text for t in tokens[:-1]] == ["A", "B"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("A\n  B")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_lex_error_on_garbage(self):
        with pytest.raises(LexError):
            tokenize("@@@")


class TestTokenStream:
    def test_peek_does_not_consume(self):
        stream = TokenStream(tokenize("A B"))
        assert stream.peek().text == "A"
        assert stream.peek().text == "A"

    def test_next_consumes(self):
        stream = TokenStream(tokenize("A B"))
        assert stream.next().text == "A"
        assert stream.next().text == "B"
        assert stream.next().kind == "EOF"
        assert stream.next().kind == "EOF"  # EOF is sticky

    def test_expect_success_and_failure(self):
        stream = TokenStream(tokenize("A"))
        assert stream.expect("NAME").text == "A"
        with pytest.raises(ParseError):
            stream.expect("NAME")

    def test_keyword_matching_case_insensitive(self):
        stream = TokenStream(tokenize("select"))
        assert stream.at_keyword("SELECT")
        stream.expect_keyword("SELECT")

    def test_eat(self):
        stream = TokenStream(tokenize(". A"))
        assert stream.eat("DOT")
        assert not stream.eat("DOT")
        assert stream.peek().text == "A"
