"""``repro.crowd.journal`` under process-shard semantics (PR 7 satellite).

The sharded serving layer gives every worker process its *own*
:class:`~repro.crowd.journal.DurableCrowdCache` journal
(``shard-<i>.wal``) over a disjoint member partition, and the
coordinator's view is the union of all of them.  These tests pin the
journal behaviours that recovery relies on:

* per-shard journals written concurrently merge into one consistent
  answer cache (no loss, no cross-shard contamination, idempotent on
  re-merge);
* a torn tail — the artifact of killing exactly one shard mid-write —
  costs that shard at most its unacknowledged final line and costs the
  *other* shards nothing;
* compaction racing a replay never exposes a truncated hybrid: every
  replay sees either the old journal or the compacted one (the
  tmp-file + ``os.replace`` guarantee).
"""

import threading

import pytest

from repro.crowd.cache import CrowdCache
from repro.crowd.journal import DurableCrowdCache, replay_journal

SHARDS = 3
#: (key, member, support) fixture rows, partitioned by member like the
#: consistent-hash ring partitions a crowd: member m<i> lives on shard
#: ``i % SHARDS`` and nowhere else
ANSWERS = [
    (f"node-{node}", f"m{member}", float(member % 2))
    for node in range(4)
    for member in range(6)
]


def shard_rows(shard):
    return [row for row in ANSWERS if int(row[1][1:]) % SHARDS == shard]


def wal(tmp_path, shard):
    return tmp_path / f"shard-{shard}.wal"


def write_shard_journals(tmp_path):
    """Concurrently write each shard's rows into its own journal."""
    barrier = threading.Barrier(SHARDS)

    def run(shard):
        with DurableCrowdCache(wal(tmp_path, shard), key_fn=str) as cache:
            barrier.wait()
            for key, member, support in shard_rows(shard):
                cache.record(key, member, support)

    threads = [
        threading.Thread(target=run, args=(shard,)) for shard in range(SHARDS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def merge_journals(tmp_path):
    """Replay every shard journal into one coordinator-side cache."""
    merged = CrowdCache()
    corrupt = 0
    for shard in range(SHARDS):
        records, bad = replay_journal(wal(tmp_path, shard))
        corrupt += bad
        for record in records:
            merged.record(record.key, record.member, record.support)
    return merged, corrupt


class TestConcurrentShardJournals:
    def test_merge_recovers_every_answer_exactly_once(self, tmp_path):
        write_shard_journals(tmp_path)
        merged, corrupt = merge_journals(tmp_path)
        assert corrupt == 0
        assert merged.total_answers() == len(ANSWERS)
        for key, member, support in ANSWERS:
            assert merged.lookup(key, member) == support

    def test_shards_stay_disjoint(self, tmp_path):
        write_shard_journals(tmp_path)
        seen = {}
        for shard in range(SHARDS):
            records, _ = replay_journal(wal(tmp_path, shard))
            for record in records:
                # a member's answers live in exactly one shard's journal
                assert seen.setdefault(record.member, shard) == shard

    def test_remerge_is_idempotent(self, tmp_path):
        write_shard_journals(tmp_path)
        # a restored shard reopens its own journal: replayed identities
        # make re-recording the same answers a no-op
        with DurableCrowdCache(wal(tmp_path, 0), key_fn=str) as reopened:
            before = reopened.total_answers()
            for key, member, support in shard_rows(0):
                reopened.record(key, member, support)
            assert reopened.total_answers() == before
        records, _ = replay_journal(wal(tmp_path, 0))
        assert len(records) == len(shard_rows(0))


class TestTornTailOnOneShard:
    def test_only_the_torn_shard_pays(self, tmp_path):
        write_shard_journals(tmp_path)
        victim = wal(tmp_path, 1)
        with victim.open("a", encoding="utf-8") as handle:
            handle.write('{"v": 1, "k": "node-9", "m": "m1", "s"')  # no newline
        merged, corrupt = merge_journals(tmp_path)
        assert corrupt == 1
        # the torn line was never acknowledged, so the merged view holds
        # exactly the acknowledged answers — from every shard
        assert merged.total_answers() == len(ANSWERS)
        assert merged.lookup("node-9", "m1") is None

    def test_torn_shard_reopens_and_keeps_appending(self, tmp_path):
        write_shard_journals(tmp_path)
        victim = wal(tmp_path, 1)
        with victim.open("a", encoding="utf-8") as handle:
            handle.write('{"k": "torn"')
        reopened = DurableCrowdCache(victim, key_fn=str)
        assert reopened.corrupt_lines == 1
        assert reopened.total_answers() == len(shard_rows(1))
        reopened.record("node-9", "m1", 1.0)
        reopened.close()
        records, corrupt = replay_journal(victim)
        # the fresh append lands after the torn line and replays fine
        assert corrupt == 1
        assert ("node-9", "m1", "concrete") in {r.identity for r in records}


class TestCompactionRacingReplay:
    def test_replay_never_sees_a_truncated_hybrid(self, tmp_path):
        path = wal(tmp_path, 0)
        rows = shard_rows(0)
        cache = DurableCrowdCache(path, key_fn=str)
        for key, member, support in rows:
            cache.record(key, member, support)

        stop = threading.Event()
        failures = []

        def compact_loop():
            while not stop.is_set():
                cache.compact()

        def replay_loop():
            for _ in range(200):
                records, corrupt = replay_journal(path)
                identities = {record.identity for record in records}
                if corrupt or len(identities) != len(rows):
                    failures.append((corrupt, len(identities)))
                    break
            stop.set()

        compactor = threading.Thread(target=compact_loop)
        replayer = threading.Thread(target=replay_loop)
        compactor.start()
        replayer.start()
        replayer.join()
        stop.set()
        compactor.join()
        cache.close()
        assert failures == []

    def test_compaction_preserves_the_merged_view(self, tmp_path):
        write_shard_journals(tmp_path)
        # compact one shard mid-fleet; the merged view is unchanged
        with DurableCrowdCache(wal(tmp_path, 2), key_fn=str) as cache:
            assert cache.compact() == len(shard_rows(2))
        merged, corrupt = merge_journals(tmp_path)
        assert corrupt == 0
        assert merged.total_answers() == len(ANSWERS)
