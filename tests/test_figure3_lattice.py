"""Figure 3 structure tests: the paper's own lattice, node by node.

Node numbering follows Figure 3; each node shows (φ(x), φ(y)) for the
grey-highlighted fragment of the sample query (the nearby-restaurant part
omitted).
"""

import pytest

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.datasets import running_example
from repro.oassisql import parse_query
from repro.vocabulary import Element


def E(name):
    return Element(name)


@pytest.fixture(scope="module")
def space():
    ontology = running_example.build_ontology()
    query = parse_query(running_example.FRAGMENT_QUERY)
    return QueryAssignmentSpace(ontology, query, max_values_per_var=2)


@pytest.fixture(scope="module")
def nodes(space):
    vocab = space.vocabulary

    def node(x, y_values):
        return Assignment.make(vocab, {"x": {E(x)}, "y": set(map(E, y_values))})

    return {
        1: node("Attraction", ["Activity"]),
        3: node("Outdoor", ["Activity"]),
        15: node("Central Park", ["Sport"]),
        16: node("Central Park", ["Biking"]),
        17: node("Central Park", ["Ball Game"]),
        18: node("Central Park", ["Biking", "Ball Game"]),
        19: node("Central Park", ["Basketball"]),
        20: node("Central Park", ["Baseball"]),
        "monkey": node("Bronx Zoo", ["Feed a monkey"]),
        "park_sport": node("Park", ["Sport"]),
    }


class TestExample42:
    def test_phi17_leq_phi20(self, space, nodes):
        """φ17 ≤ φ20 since Ball Game ≤ Baseball (Example 4.2)."""
        assert space.leq(nodes[17], nodes[20])
        assert not space.leq(nodes[20], nodes[17])

    def test_phi17_immediate_successor_phi20(self, space, nodes):
        """φ17 ⋖ φ20: Baseball is an immediate child of Ball Game."""
        assert nodes[20] in space.successors(nodes[17])

    def test_phi15_successors_include_sport_specializations(self, space, nodes):
        successors = space.successors(nodes[15])
        assert nodes[16] in successors  # Sport -> Biking
        assert nodes[17] in successors  # Sport -> Ball Game

    def test_node1_is_the_unique_root(self, space, nodes):
        assert space.roots() == [nodes[1]]

    def test_example46_descent_path_exists(self, space, nodes):
        """The outer-loop trace of Example 4.6 descends 1 -> 3 -> ... -> 17."""
        assert nodes[3] in space.successors(nodes[1])
        # every listed node is ≤ node 20's region appropriately
        assert space.leq(nodes[1], nodes[17])
        assert space.leq(nodes[3], nodes[17])
        assert space.leq(nodes[15], nodes[17])


class TestExample52:
    def test_node18_combination_of_16_and_17(self, space, nodes):
        """Node 18 (multiplicity 2) arises by lazily combining 16 and 17."""
        assert nodes[18] in space.successors(nodes[17])
        assert nodes[16] in space.predecessors(nodes[18])
        assert nodes[17] in space.predecessors(nodes[18])

    def test_node18_in_expansion(self, space, nodes):
        assert space.in_expansion(nodes[18])
        assert space.is_valid(nodes[18])


class TestValidityColours:
    """Figure 3's dashed nodes are invalid w.r.t. the WHERE clause."""

    def test_instance_nodes_valid(self, space, nodes):
        for key in (15, 16, 17, 18, 19, 20, "monkey"):
            assert space.is_valid(nodes[key]), key

    def test_class_level_nodes_invalid(self, space, nodes):
        # (Park, Sport) binds a class where an instance is required: dashed
        assert not space.is_valid(nodes["park_sport"])
        assert not space.is_valid(nodes[1])
        assert not space.is_valid(nodes[3])

    def test_dashed_nodes_still_in_expansion(self, space, nodes):
        # the algorithm explores them even though they are invalid
        assert space.in_expansion(nodes["park_sport"])
        assert space.in_expansion(nodes[1])
