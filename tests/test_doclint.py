"""Tests for the documentation cross-link checker (repro.analysis.doclint)."""

import pathlib

import pytest

from repro.analysis.doclint import check_file, check_tree, main

ROOT = pathlib.Path(__file__).resolve().parent.parent


class TestReferenceForms:
    def _check(self, tmp_path, text, name="page.md"):
        page = tmp_path / name
        page.parent.mkdir(parents=True, exist_ok=True)
        page.write_text(text)
        return check_file(page, tmp_path)

    def test_markdown_link_to_missing_file_is_dangling(self, tmp_path):
        findings = self._check(tmp_path, "see [the guide](MISSING.md).")
        assert len(findings) == 1
        assert findings[0].target == "MISSING.md"
        assert findings[0].line == 1

    def test_markdown_link_to_existing_file_resolves(self, tmp_path):
        (tmp_path / "OTHER.md").write_text("x")
        assert self._check(tmp_path, "see [other](OTHER.md).") == []

    def test_anchor_suffix_is_stripped(self, tmp_path):
        (tmp_path / "OTHER.md").write_text("x")
        assert self._check(tmp_path, "see [s](OTHER.md#section).") == []

    def test_inline_code_reference_checked(self, tmp_path):
        findings = self._check(tmp_path, "read `docs/GONE.md` first")
        assert [f.target for f in findings] == ["docs/GONE.md"]

    def test_sibling_reference_resolves_relative_to_referrer(self, tmp_path):
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "A.md").write_text("x")
        findings = self._check(tmp_path, "see `A.md`", name="docs/B.md")
        assert findings == []

    def test_root_fallback_for_docs_pages(self, tmp_path):
        (tmp_path / "README.md").write_text("x")
        findings = self._check(tmp_path, "see `README.md`", name="docs/B.md")
        assert findings == []

    def test_external_urls_ignored(self, tmp_path):
        text = "see [x](https://example.com/page.md) and `http://a.md`"
        assert self._check(tmp_path, text) == []

    def test_fenced_code_blocks_ignored(self, tmp_path):
        text = "```text\nsee docs/IMAGINARY.md and [x](FAKE.md)\n```\n"
        assert self._check(tmp_path, text) == []

    def test_absolute_paths_always_dangle(self, tmp_path):
        findings = self._check(tmp_path, "see `/etc/anything/NOPE.md`")
        assert [f.target for f in findings] == ["/etc/anything/NOPE.md"]


class TestTreeAndCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("see [d](docs/D.md)")
        (tmp_path / "docs").mkdir()
        (tmp_path / "docs" / "D.md").write_text("see `README.md`")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_dangling_tree_exits_one(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("see [d](docs/NOPE.md)")
        assert main([str(tmp_path)]) == 1
        assert "NOPE.md" in capsys.readouterr().err

    def test_usage_error(self, tmp_path):
        assert main([str(tmp_path), "extra"]) == 2
        assert main([str(tmp_path / "not-a-dir")]) == 2


class TestRealTree:
    def test_repository_docs_have_no_dangling_references(self):
        findings = check_tree(ROOT)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_repository_has_cross_links_to_check(self):
        """The checker must actually be exercising references — the
        handbook pages cross-link heavily by design."""
        tuning = (ROOT / "docs" / "TUNING.md").read_text()
        assert "PERFORMANCE.md" in tuning
        assert "OBSERVABILITY.md" in tuning
