"""EngineConfig facade: keyword-only signatures + deprecation shims."""

import warnings

import pytest

from repro import EngineConfig, OassisEngine
from repro.datasets import running_example
from repro.engine import reset_deprecation_warnings


@pytest.fixture(scope="module")
def ontology():
    return running_example.build_ontology()


@pytest.fixture(autouse=True)
def fresh_warning_state():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


class TestEngineConfig:
    def test_defaults(self):
        config = EngineConfig()
        assert config.max_values_per_var == 3
        assert config.sample_size == 5

    def test_override_keeps_unset_fields(self):
        config = EngineConfig(max_values_per_var=2)
        bumped = config.override(sample_size=7)
        assert bumped.max_values_per_var == 2
        assert bumped.sample_size == 7
        # None means "keep" — the replay/execute call-sites rely on it
        assert config.override(sample_size=None).sample_size == config.sample_size

    def test_engine_reads_config(self, ontology):
        engine = OassisEngine(ontology, config=EngineConfig(max_values_per_var=2))
        assert engine.max_values_per_var == 2
        assert engine.config.max_values_per_var == 2


class TestDeprecationShims:
    def test_legacy_init_kwargs_warn_exactly_once(self, ontology):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            OassisEngine(ontology, max_values_per_var=2)
            OassisEngine(ontology, max_values_per_var=2, max_more_facts=0)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "EngineConfig" in str(deprecations[0].message)

    def test_legacy_kwargs_still_apply(self, ontology):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            engine = OassisEngine(ontology, max_values_per_var=1)
        assert engine.max_values_per_var == 1

    def test_unknown_init_kwarg_raises(self, ontology):
        with pytest.raises(TypeError):
            OassisEngine(ontology, bogus=1)

    def test_legacy_positional_tail_binds(self, ontology):
        engine = OassisEngine(ontology)
        query = engine.parse(running_example.FRAGMENT_QUERY)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            manager = engine.queue_manager(query, 2)  # legacy: sample_size
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert manager.aggregator.sample_size == 2

    def test_positional_and_keyword_conflict_raises(self, ontology):
        engine = OassisEngine(ontology)
        query = engine.parse(running_example.FRAGMENT_QUERY)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(TypeError):
                engine.queue_manager(query, 2, sample_size=3)

    def test_reset_makes_warning_fire_again(self, ontology):
        """Regression: warn-once state must not leak across tests.

        The autouse ``fresh_warning_state`` fixture resets the module-level
        ``_warned`` set around every test; this proves the reset actually
        re-arms the warning (if it leaked, the second engine construction
        here would stay silent and so would the *next test module's*).
        """
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            OassisEngine(ontology, max_values_per_var=2)
            reset_deprecation_warnings()
            OassisEngine(ontology, max_values_per_var=2)
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 2

    def test_new_style_call_does_not_warn(self, ontology):
        engine = OassisEngine(ontology, config=EngineConfig(sample_size=3))
        query = engine.parse(running_example.FRAGMENT_QUERY)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.queue_manager(query, sample_size=2)
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
