"""The network-facing crowd gateway: endpoint contracts, MCP, e2e identity.

Contract tests drive the real asyncio HTTP server over loopback sockets
through :class:`~repro.gateway.client.GatewayClient` (and raw
``http.client`` where the client is too well-behaved to produce the
malformed traffic under test).  The e2e tests replay whole
simulated-member campaigns and hold the gateway to the same oracle as
every other serving layer: the MSP sets must be identical to a serial
``engine.execute``.

The fault-injection campaign uses ``DISCONNECT`` rate 0.01 with seed 0:
:func:`repro.faults.plan._roll` is a pure function of
``(seed, site, member, kind, event)``, and for this seed no member's
roll stream contains two consecutive firing events within the first
6000 requests — so the client's single idempotent retry always
suffices and the test is deterministic, not flaky.
"""

import http.client
import json
import threading
import time

import pytest

from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayClientError,
    GatewayConfig,
    McpGateway,
    replay_campaign,
    serve_in_thread,
)
from repro.observability import tracing, unregistered_names


@pytest.fixture()
def served():
    """An open gateway on a fresh loopback port; stops on teardown."""
    app = GatewayApp(config=GatewayConfig(question_timeout=60.0))
    handle = serve_in_thread(app)
    try:
        yield app, handle
    finally:
        handle.stop()


@pytest.fixture()
def admin(served):
    _, handle = served
    client = GatewayClient(handle.host, handle.port)
    try:
        yield client
    finally:
        client.close()


def _raw_request(handle, method, path, body=None, headers=None):
    connection = http.client.HTTPConnection(handle.host, handle.port, timeout=10)
    try:
        connection.request(method, path, body=body, headers=headers or {})
        response = connection.getresponse()
        return response.status, response.read()
    finally:
        connection.close()


class TestEndpointContracts:
    def test_health_and_datasets_are_open(self, admin):
        assert admin.health()["status"] == "ok"
        listing = admin.datasets()
        assert "demo" in listing.datasets
        assert listing.active is None

    def test_auth_rejection_on_admin_endpoints(self):
        app = GatewayApp(admin_token="sekrit")
        with serve_in_thread(app) as handle:
            anonymous = GatewayClient(handle.host, handle.port)
            with pytest.raises(GatewayClientError) as failure:
                anonymous.activate("demo")
            assert failure.value.status == 401
            with pytest.raises(GatewayClientError) as failure:
                anonymous.pose_query()
            assert failure.value.status == 401
            anonymous.close()
            # the right token goes through
            operator = GatewayClient(handle.host, handle.port, token="sekrit")
            assert operator.activate("demo").activated
            operator.close()

    def test_member_token_is_required_for_next_and_answer(self, served, admin):
        _, handle = served
        admin.activate("demo")
        status, _ = _raw_request(handle, "GET", "/next")
        assert status == 401
        status, _ = _raw_request(
            handle,
            "GET",
            "/next",
            headers={"Authorization": "Bearer forged-token"},
        )
        assert status == 401
        status, _ = _raw_request(
            handle,
            "POST",
            "/answer",
            body=b'{"v": 1, "qid": "q1", "support": 1.0}',
            headers={"Content-Type": "application/json"},
        )
        assert status == 401

    def test_malformed_json_is_a_client_error_not_a_500(self, served):
        _, handle = served
        status, body = _raw_request(
            handle,
            "POST",
            "/join",
            body=b"{definitely not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        payload = json.loads(body)
        assert payload["error"] == "bad_request"
        # and the server is still alive afterwards
        status, _ = _raw_request(handle, "GET", "/health")
        assert status == 200

    def test_unknown_path_is_404(self, served):
        _, handle = served
        status, _ = _raw_request(handle, "GET", "/definitely/not/here")
        assert status == 404

    def test_wrong_method_is_405(self, served):
        _, handle = served
        status, _ = _raw_request(handle, "DELETE", "/health")
        assert status == 405

    def test_unknown_dataset_is_404(self, admin):
        with pytest.raises(GatewayClientError) as failure:
            admin.activate("atlantis")
        assert failure.value.status == 404

    def test_query_without_active_dataset_is_a_conflict(self, admin):
        with pytest.raises(GatewayClientError) as failure:
            admin.pose_query()
        assert failure.value.status == 409

    def test_result_for_unknown_session_is_404(self, admin):
        admin.activate("demo")
        with pytest.raises(GatewayClientError) as failure:
            admin.result("never-posed")
        assert failure.value.status == 404

    def test_long_poll_timeout_returns_an_empty_batch(self, served, admin):
        _, handle = served
        admin.activate("demo")
        token = admin.join("idler").token
        member = GatewayClient(handle.host, handle.port, token=token)
        started = time.perf_counter()
        batch = member.next_questions(wait=0.15)
        waited = time.perf_counter() - started
        assert batch.questions == ()
        assert batch.retry_after_s > 0
        assert waited >= 0.1  # it actually long-polled
        member.close()

    def test_duplicate_answer_is_idempotent(self, served, admin):
        _, handle = served
        admin.activate("demo")
        admin.pose_query(threshold=0.4, session_id="s-dup")
        token = admin.join("m-dup").token
        member = GatewayClient(handle.host, handle.port, token=token)
        batch = member.next_questions(wait=2.0, k=1)
        assert batch.questions
        question = batch.questions[0]
        first = member.submit_answer(question.qid, 1.0)
        assert first.outcome in ("recorded", "passed")
        second = member.submit_answer(question.qid, 0.0)
        assert second.outcome == "stale"
        # the replay did not double-count: the session saw one answer
        result = admin.result("s-dup")
        assert result.questions_asked >= 1
        member.close()

    def test_unknown_qid_is_404_and_foreign_qid_is_403(self, served, admin):
        _, handle = served
        admin.activate("demo")
        admin.pose_query(threshold=0.4, session_id="s-owner")
        owner_token = admin.join("owner").token
        other_token = admin.join("other").token
        owner = GatewayClient(handle.host, handle.port, token=owner_token)
        other = GatewayClient(handle.host, handle.port, token=other_token)
        with pytest.raises(GatewayClientError) as failure:
            owner.submit_answer("q999", 1.0)
        assert failure.value.status == 404
        batch = owner.next_questions(wait=2.0, k=1)
        assert batch.questions
        with pytest.raises(GatewayClientError) as failure:
            other.submit_answer(batch.questions[0].qid, 1.0)
        assert failure.value.status == 403
        owner.close()
        other.close()

    def test_backpressure_comes_back_429(self):
        # the cap is cross-session (one in-flight question per member per
        # session), so three open sessions let one member hoard past it
        config = GatewayConfig(question_timeout=60.0, in_flight_limit=2)
        app = GatewayApp(config=config)
        with serve_in_thread(app) as handle:
            operator = GatewayClient(handle.host, handle.port)
            operator.activate("demo")
            for index, threshold in enumerate((0.2, 0.3, 0.4)):
                operator.pose_query(threshold=threshold, session_id=f"s-bp{index}")
            token = operator.join("hoarder").token
            member = GatewayClient(handle.host, handle.port, token=token)
            held = []
            # hoard questions without answering until the cap bites
            for _ in range(10):
                try:
                    batch = member.next_questions(wait=0.5, k=1)
                except GatewayClientError as error:
                    assert error.status == 429
                    break
                held.extend(batch.questions)
                assert len(held) <= config.in_flight_limit
            else:
                pytest.fail("never hit the in-flight cap")
            # answering drains the backlog and lifts the 429
            for question in held:
                member.submit_answer(question.qid, 1.0)
            batch = member.next_questions(wait=0.5, k=1)
            assert len(batch.questions) <= config.in_flight_limit
            member.close()
            operator.close()

    def test_join_is_idempotent_per_member(self, admin):
        admin.activate("demo")
        first = admin.join("w1")
        again = admin.join("w1")
        assert first.token == again.token

    def test_activation_is_idempotent_for_the_active_dataset(self, admin):
        assert admin.activate("demo").activated
        assert not admin.activate("demo").activated

    def test_clean_shutdown(self):
        app = GatewayApp()
        handle = serve_in_thread(app)
        client = GatewayClient(handle.host, handle.port)
        assert client.health()["status"] == "ok"
        client.close()
        handle.stop()
        fresh = GatewayClient(handle.host, handle.port, retries=0)
        with pytest.raises(GatewayClientError):
            fresh.health()
        fresh.close()
        handle.stop()  # idempotent


class TestMcpSurface:
    def test_tools_are_gated_on_activation(self):
        app = GatewayApp()
        mcp = McpGateway(app)
        assert mcp.available_tools() == ["list_datasets", "activate_dataset"]
        response = mcp.handle(
            {
                "jsonrpc": "2.0",
                "id": 1,
                "method": "tools/call",
                "params": {"name": "pose_query", "arguments": {}},
            }
        )
        assert response["result"]["isError"]
        assert "activate a dataset first" in response["result"]["content"][0]["text"]
        app.activate_dataset("demo")
        assert "pose_query" in mcp.available_tools()

    def test_full_member_lifecycle_over_mcp_http(self, served, admin):
        admin.activate("demo")

        def call(method, params=None, rpc_id=1):
            return admin.mcp(
                {"jsonrpc": "2.0", "id": rpc_id, "method": method,
                 "params": params or {}}
            )

        def tool_payload(response):
            assert not response["result"]["isError"], response
            return json.loads(response["result"]["content"][0]["text"])

        initialized = call("initialize")
        assert initialized["result"]["serverInfo"]["name"] == "oassis-gateway"
        listed = call("tools/list")
        names = [tool["name"] for tool in listed["result"]["tools"]]
        assert "submit_answer" in names
        posed = tool_payload(
            call("tools/call", {"name": "pose_query",
                                "arguments": {"threshold": 0.4}})
        )
        session_id = posed["session_id"]
        # MCP has no long poll: retry the single dispatch attempt briefly
        questions = []
        for _ in range(100):
            fetched = tool_payload(
                call("tools/call",
                     {"name": "next_questions",
                      "arguments": {"member_id": "agent-1"}})
            )
            questions = fetched["questions"]
            if questions:
                break
            time.sleep(0.02)
        assert questions, "dispatch never produced a question"
        answered = tool_payload(
            call(
                "tools/call",
                {
                    "name": "submit_answer",
                    "arguments": {
                        "member_id": "agent-1",
                        "qid": questions[0]["qid"],
                        "support": 1.0,
                    },
                },
            )
        )
        assert answered["outcome"] in ("recorded", "passed")
        result = tool_payload(
            call("tools/call",
                 {"name": "get_result",
                  "arguments": {"session_id": session_id}})
        )
        assert result["session_id"] == session_id

    def test_unknown_tool_lists_the_known_ones(self):
        mcp = McpGateway(GatewayApp())
        response = mcp.handle(
            {
                "jsonrpc": "2.0",
                "id": 9,
                "method": "tools/call",
                "params": {"name": "mine_bitcoin", "arguments": {}},
            }
        )
        assert response["result"]["isError"]
        assert "list_datasets" in response["result"]["content"][0]["text"]

    def test_protocol_violations_are_rpc_errors(self):
        mcp = McpGateway(GatewayApp())
        bad_envelope = mcp.handle({"id": 1, "method": "tools/list"})
        assert bad_envelope["error"]["code"] == -32600
        unknown = mcp.handle(
            {"jsonrpc": "2.0", "id": 2, "method": "tools/uninstall"}
        )
        assert unknown["error"]["code"] == -32601


class TestEndToEndIdentity:
    """The acceptance oracle: loopback HTTP replay == serial execute."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_demo_campaign_matches_serial(self, seed):
        app = GatewayApp()
        with serve_in_thread(app) as handle:
            report = replay_campaign(
                host=handle.host,
                port=handle.port,
                domain="demo",
                sessions=2,
                crowd_size=4,
                seed=seed,
                wait=0.05,
                max_runtime=60.0,
            )
        assert report["errors"] == []
        assert not report["timed_out"]
        assert report["mismatches"] == []
        assert report["verified"]

    def test_travel_campaign_matches_serial(self):
        app = GatewayApp()
        with serve_in_thread(app) as handle:
            report = replay_campaign(
                host=handle.host,
                port=handle.port,
                domain="travel",
                sessions=1,
                crowd_size=4,
                thresholds=(0.5,),
                seed=0,
                wait=0.05,
                max_runtime=90.0,
            )
        assert report["errors"] == []
        assert report["verified"]

    def test_campaign_survives_injected_disconnects_and_stalls(self):
        faults = FaultPlan(
            [
                FaultSpec("gateway.request", FaultKind.DISCONNECT, rate=0.01),
                FaultSpec("gateway.request", FaultKind.SLOW_CLIENT, rate=0.05),
            ],
            seed=0,
        )
        app = GatewayApp(
            config=GatewayConfig(slow_client_delay=0.01), faults=faults
        )
        with tracing() as tracer:
            with serve_in_thread(app) as handle:
                report = replay_campaign(
                    host=handle.host,
                    port=handle.port,
                    domain="demo",
                    sessions=2,
                    crowd_size=4,
                    seed=0,
                    wait=0.05,
                    max_runtime=60.0,
                )
        assert report["verified"], report
        injected = tracer.counters.get("faults.injected.disconnect", 0)
        assert injected > 0, "the plan never fired; the test proves nothing"
        assert tracer.counters.get("gateway.disconnects.injected") == injected
        assert tracer.counters.get("faults.injected.slow_client", 0) > 0

    def test_gateway_records_latency_histograms(self):
        app = GatewayApp()
        with tracing() as tracer:
            with serve_in_thread(app) as handle:
                replay_campaign(
                    host=handle.host,
                    port=handle.port,
                    domain="demo",
                    sessions=1,
                    crowd_size=4,
                    seed=0,
                    wait=0.05,
                    max_runtime=60.0,
                )
        for name in ("gateway.latency.next", "gateway.latency.answer",
                     "gateway.latency.query", "gateway.latency.result"):
            assert tracer.histograms[name].count > 0, name
        assert unregistered_names(tracer) == frozenset()
        report = tracer.report()
        assert report["gateway"]["requests"] > 0
        assert report["gateway"]["answers_accepted"] > 0


class TestConcurrentMembersShareOneLoop:
    def test_parallel_long_polls_do_not_serialize(self, served, admin):
        """Concurrent long-polls must wait in parallel: the async server
        holds every line open on one event loop."""
        _, handle = served
        admin.activate("demo")
        tokens = [admin.join(f"p{i}").token for i in range(4)]
        elapsed = []

        def poll(token):
            client = GatewayClient(handle.host, handle.port, token=token)
            started = time.perf_counter()
            client.next_questions(wait=0.3)
            elapsed.append(time.perf_counter() - started)
            client.close()

        threads = [
            threading.Thread(target=poll, args=(token,)) for token in tokens
        ]
        started = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = time.perf_counter() - started
        assert len(elapsed) == 4
        # serialized waits would take ~4 * 0.3s; parallel ones ~0.3s
        assert total < 0.9, f"long-polls serialized: {total:.2f}s {elapsed}"
