"""Unit tests for repro.vocabulary.terms."""

import pytest

from repro.vocabulary.terms import (
    ANY_ELEMENT,
    ANY_RELATION_WILDCARD,
    THING,
    Element,
    Relation,
    as_element,
    as_elements,
    as_relation,
)


class TestTermBasics:
    def test_equality_same_kind(self):
        assert Element("Biking") == Element("Biking")
        assert Relation("doAt") == Relation("doAt")

    def test_inequality_across_kinds(self):
        assert Element("doAt") != Relation("doAt")

    def test_inequality_different_names(self):
        assert Element("Biking") != Element("Sport")

    def test_hash_consistency(self):
        assert hash(Element("Biking")) == hash(Element("Biking"))
        assert {Element("A"), Element("A")} == {Element("A")}

    def test_element_and_relation_hash_differ(self):
        # same name, different kinds: must not collide as dict keys
        d = {Element("x"): 1, Relation("x"): 2}
        assert d[Element("x")] == 1
        assert d[Relation("x")] == 2

    def test_str_and_repr(self):
        assert str(Element("Central Park")) == "Central Park"
        assert "Central Park" in repr(Element("Central Park"))

    def test_sorting_is_deterministic(self):
        terms = sorted([Element("B"), Element("A"), Relation("A")])
        assert terms == [Element("A"), Element("B"), Relation("A")]

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Element("")

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError):
            Element(42)


class TestCoercions:
    def test_as_element_passthrough(self):
        e = Element("NYC")
        assert as_element(e) is e

    def test_as_element_from_string(self):
        assert as_element("NYC") == Element("NYC")

    def test_as_element_rejects_relation(self):
        with pytest.raises(TypeError):
            as_element(Relation("doAt"))

    def test_as_relation_from_string(self):
        assert as_relation("doAt") == Relation("doAt")

    def test_as_relation_rejects_element(self):
        with pytest.raises(TypeError):
            as_relation(Element("NYC"))

    def test_as_elements(self):
        assert as_elements(["A", Element("B")]) == (Element("A"), Element("B"))


class TestWellKnownTerms:
    def test_thing_is_element(self):
        assert isinstance(THING, Element)

    def test_wildcards_are_distinct(self):
        assert ANY_ELEMENT != THING
        assert isinstance(ANY_RELATION_WILDCARD, Relation)
