"""Property-based tests (hypothesis) for the core orders and algorithms."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.assignments import Assignment, ExplicitDAG, canonical_values
from repro.crowd import PersonalDatabase, Transaction
from repro.mining import (
    brute_force_msps,
    horizontal_mine,
    naive_mine,
    vertical_mine,
)
from repro.ontology import Fact, FactSet
from repro.vocabulary import Element, Vocabulary


# ---------------------------------------------------------------- strategies


@st.composite
def taxonomies(draw):
    """A random tree taxonomy over elements e0..e{n-1} (e0 the root)."""
    size = draw(st.integers(min_value=2, max_value=12))
    vocab = Vocabulary()
    elements = [Element(f"e{i}") for i in range(size)]
    vocab.add_element("e0")
    for i in range(1, size):
        parent = draw(st.integers(min_value=0, max_value=i - 1))
        vocab.specialize_element(f"e{parent}", f"e{i}")
    return vocab, elements


@st.composite
def layered_dags(draw):
    """A small random layered DAG with a downward-closed significant set."""
    rng = random.Random(draw(st.integers(min_value=0, max_value=10_000)))
    layers = draw(st.integers(min_value=2, max_value=4))
    widths = [1] + [draw(st.integers(min_value=1, max_value=5)) for _ in range(layers)]
    dag: ExplicitDAG = ExplicitDAG()
    node_id = 0
    previous: list = []
    for width in widths:
        current = list(range(node_id, node_id + width))
        node_id += width
        for node in current:
            dag.add_node(node)
            if previous:
                dag.add_edge(rng.choice(previous), node)
        previous = current
    # random downward-closed significance: pick seeds, close downward
    seeds = [n for n in dag.nodes() if rng.random() < 0.4]
    significant = set()
    for seed in seeds:
        significant.update(dag.ancestors(seed))
    return dag, significant


# -------------------------------------------------------------------- orders


@given(taxonomies(), st.data())
@settings(max_examples=60, suppress_health_check=[HealthCheck.too_slow])
def test_element_order_is_partial_order(tax, data):
    vocab, elements = tax
    a = data.draw(st.sampled_from(elements))
    b = data.draw(st.sampled_from(elements))
    c = data.draw(st.sampled_from(elements))
    # reflexive
    assert vocab.leq(a, a)
    # antisymmetric
    if vocab.leq(a, b) and vocab.leq(b, a):
        assert a == b
    # transitive
    if vocab.leq(a, b) and vocab.leq(b, c):
        assert vocab.leq(a, c)


@given(taxonomies(), st.data())
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_canonical_values_is_canonical(tax, data):
    vocab, elements = tax
    values = data.draw(st.sets(st.sampled_from(elements), min_size=1, max_size=5))
    canon = canonical_values(values, vocab)
    # antichain
    for a in canon:
        for b in canon:
            if a != b:
                assert not vocab.leq(a, b)
    # idempotent
    assert canonical_values(canon, vocab) == canon
    # equivalent: mutual domination with the original set
    for v in values:
        assert any(vocab.leq(v, c) for c in canon)


@given(taxonomies(), st.data())
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_fact_set_order_reflexive_transitive(tax, data):
    vocab, elements = tax
    vocab.add_relation("r")

    def random_fact_set():
        pairs = data.draw(
            st.lists(
                st.tuples(st.sampled_from(elements), st.sampled_from(elements)),
                min_size=1,
                max_size=3,
            )
        )
        return FactSet([Fact(s, "r", o) for s, o in pairs])

    a = random_fact_set()
    b = random_fact_set()
    c = random_fact_set()
    assert a.leq(a, vocab)
    if a.leq(b, vocab) and b.leq(c, vocab):
        assert a.leq(c, vocab)


@given(taxonomies(), st.data())
@settings(max_examples=40, suppress_health_check=[HealthCheck.too_slow])
def test_support_is_antitone_in_specificity(tax, data):
    """φ ≤ φ' implies supp(φ) ≥ supp(φ') — Observation 4.4's engine."""
    vocab, elements = tax
    vocab.add_relation("r")
    transactions = data.draw(
        st.lists(
            st.sets(
                st.tuples(st.sampled_from(elements), st.sampled_from(elements)),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=6,
        )
    )
    db = PersonalDatabase(
        Transaction(f"T{i}", FactSet([Fact(s, "r", o) for s, o in t]))
        for i, t in enumerate(transactions)
    )
    general_pair = data.draw(st.tuples(st.sampled_from(elements), st.sampled_from(elements)))
    general = FactSet([Fact(general_pair[0], "r", general_pair[1])])
    # specialize both components within the taxonomy
    specific_subject = data.draw(
        st.sampled_from(sorted(vocab.descendants(general_pair[0]), key=str))
    )
    specific_object = data.draw(
        st.sampled_from(sorted(vocab.descendants(general_pair[1]), key=str))
    )
    specific = FactSet([Fact(specific_subject, "r", specific_object)])
    assert general.leq(specific, vocab)
    assert db.support(general, vocab) >= db.support(specific, vocab)


# ---------------------------------------------------------------- algorithms


@given(layered_dags())
@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_all_miners_recover_brute_force_msps(setup):
    dag, significant = setup
    expected = set(brute_force_msps(dag, lambda n: n in significant))
    oracle = lambda n: 1.0 if n in significant else 0.0
    for miner in (vertical_mine, horizontal_mine, naive_mine):
        result = miner(dag, oracle, 0.5)
        assert set(result.msps) == expected, miner.__name__


@given(layered_dags())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_vertical_never_asks_twice(setup):
    dag, significant = setup
    asked = []

    def oracle(node):
        asked.append(node)
        return 1.0 if node in significant else 0.0

    vertical_mine(dag, oracle, 0.5)
    assert len(asked) == len(set(asked))


@given(layered_dags())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_vertical_asks_at_most_every_node(setup):
    dag, significant = setup
    result = vertical_mine(
        dag, lambda n: 1.0 if n in significant else 0.0, 0.5
    )
    assert result.questions <= len(dag)


@given(taxonomies(), st.data())
@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
def test_assignment_order_properties(tax, data):
    vocab, elements = tax

    def random_assignment():
        values = data.draw(
            st.sets(st.sampled_from(elements), min_size=1, max_size=3)
        )
        return Assignment.make(vocab, {"x": values})

    a = random_assignment()
    b = random_assignment()
    c = random_assignment()
    assert a.leq(a, vocab)
    if a.leq(b, vocab) and b.leq(c, vocab):
        assert a.leq(c, vocab)
    # canonical representatives make the preorder a partial order
    if a.leq(b, vocab) and b.leq(a, vocab):
        assert a == b


@given(layered_dags(), st.data())
@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_classification_state_matches_reference(setup, data):
    """The incremental witness-log state equals a brute-force reference."""
    from repro.mining import ClassificationState, Status

    dag, significant = setup

    class NoFastPath:
        """Hide ancestors/descendants so the witness strategy is used."""

        def __init__(self, inner):
            self._inner = inner

        def roots(self):
            return self._inner.roots()

        def successors(self, node):
            return self._inner.successors(node)

        def predecessors(self, node):
            return self._inner.predecessors(node)

        def leq(self, a, b):
            return self._inner.leq(a, b)

        def is_valid(self, node):
            return self._inner.is_valid(node)

    wrapped = NoFastPath(dag)
    state = ClassificationState(wrapped)
    reference = ClassificationState(dag)  # fast-path reference
    nodes = dag.nodes()
    marks = data.draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.booleans()),
            min_size=1,
            max_size=8,
        )
    )
    for node, mark_significant in marks:
        # keep the marks consistent with a downward-closed landscape
        if mark_significant and node in significant:
            state.mark_significant(node)
            reference.mark_significant(node)
        elif not mark_significant and node not in significant:
            state.mark_insignificant(node)
            reference.mark_insignificant(node)
        # interleave queries to exercise the incremental scan positions
        probe = data.draw(st.sampled_from(nodes))
        assert state.status(probe) == reference.status(probe)
    for node in nodes:
        assert state.status(node) == reference.status(node), node
