"""Sanity checks for the crowd-complexity bounds (Props. 4.7 and 4.8).

Proposition 4.8 lower-bounds any concrete-question algorithm by
``|msp_valid| + |msp⁻_valid|``; Proposition 4.7 upper-bounds the vertical
algorithm by ``O((|E| + |R|)(|msp| + |msp⁻|))``.  We check both on explicit
DAGs (where the vocabulary factor maps to the max out-degree) and the upper
bound's query-space form on the running example.
"""

import pytest

from repro.assignments import QueryAssignmentSpace
from repro.datasets import running_example
from repro.mining import brute_force_msps, negative_border, vertical_mine
from repro.oassisql import parse_query
from repro.synth import generate_dag, place_msps


class TestExplicitDagBounds:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_lower_bound(self, seed):
        dag = generate_dag(width=80, depth=5, seed=seed, valid_fraction=1.0)
        planted = place_msps(dag, 4, seed=seed)
        result = vertical_mine(dag, planted.support, 0.5)
        msps = brute_force_msps(dag, planted.is_significant, valid_only=False)
        border = negative_border(dag, planted.is_significant)
        # every MSP and every minimal-insignificant node must be asked
        assert result.questions >= len(msps) + len(border) - 1

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_upper_bound_with_degree_factor(self, seed):
        dag = generate_dag(width=80, depth=5, seed=seed, valid_fraction=1.0)
        planted = place_msps(dag, 4, seed=seed)
        result = vertical_mine(dag, planted.support, 0.5)
        msps = brute_force_msps(dag, planted.is_significant, valid_only=False)
        border = negative_border(dag, planted.is_significant)
        max_degree = max(len(dag.successors(n)) for n in dag.nodes())
        depth = dag.height() + 1
        bound = (max_degree * depth + 1) * (len(msps) + len(border))
        assert result.questions <= bound


class TestQuerySpaceBound:
    def test_proposition_47_on_running_example(self):
        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        vocab = ontology.vocabulary
        query = parse_query(running_example.FRAGMENT_QUERY)
        space = QueryAssignmentSpace(ontology, query, max_values_per_var=2)

        def u_avg(node):
            facts = space.instantiate(node)
            return (
                dbs["u1"].support(facts, vocab) + dbs["u2"].support(facts, vocab)
            ) / 2

        result = vertical_mine(space, u_avg, 0.4)
        msps = brute_force_msps(
            space, lambda n: u_avg(n) >= 0.4, valid_only=False
        )
        border = negative_border(space, lambda n: u_avg(n) >= 0.4)
        vocabulary_size = len(vocab)  # |E| + |R|
        bound = vocabulary_size * (len(msps) + len(border))
        assert result.questions <= bound
        assert result.questions >= len(msps)
