"""Adaptive support-backend selection (repro.crowd.backend).

Two layers of coverage:

* unit tests for the cost model itself — feature collection, the decision
  rule at its calibrated boundary, memoization and counters;
* end-to-end **boundary shapes** — the regimes where the choice could
  plausibly flip (tiny member DBs, a paper-scale wide taxonomy from
  ``repro.synth``, high candidate fan-out), each asserting that
  forced-scan, forced-bitset and adaptive runs mine *identical* MSPs and
  ask identical question counts.
"""

import pytest

from repro.crowd import (
    CrowdMember,
    PersonalDatabase,
    choose_backend,
    set_support_backend,
    support_backend,
)
from repro.datasets import running_example, travel
from repro.engine.config import EngineConfig
from repro.engine.engine import OassisEngine
from repro.observability import tracing
from repro.ontology.facts import parse_fact_set
from repro.synth import random_taxonomy

BACKENDS = ("reference", "tid", "adaptive")


@pytest.fixture(autouse=True)
def _adaptive_default():
    """Every test starts and ends in the shipped default mode."""
    set_support_backend("adaptive")
    yield
    set_support_backend("adaptive")


def _mine(build_members, ontology, query, backend, **engine_kwargs):
    """One full mining run under ``backend`` with a fresh crowd."""
    previous = set_support_backend(backend)
    try:
        engine = OassisEngine(
            ontology,
            config=EngineConfig(max_values_per_var=2, max_more_facts=0),
        )
        result = engine.execute(query, build_members(), **engine_kwargs)
    finally:
        set_support_backend(previous)
    return sorted(repr(a) for a in result.all_msps), result.questions


def _assert_backend_identity(build_members, ontology, query, **engine_kwargs):
    """Forced-scan, forced-bitset and adaptive must be indistinguishable."""
    runs = {
        backend: _mine(build_members, ontology, query, backend, **engine_kwargs)
        for backend in BACKENDS
    }
    assert runs["tid"] == runs["reference"], "tid diverged from the scan"
    assert runs["adaptive"] == runs["reference"], "adaptive diverged"
    return runs["adaptive"]


# --------------------------------------------------------------- cost model


class TestCostModel:
    @pytest.fixture(scope="class")
    def vocabulary(self):
        return travel.build_dataset().ontology.vocabulary

    def test_single_fact_database_scans(self, vocabulary):
        tiny = PersonalDatabase.parse(["Basketball doAt Central Park"])
        decision = choose_backend(tiny, vocabulary)
        assert decision.backend == "reference"
        assert decision.features.total_facts == 1
        assert decision.scan_cost == 1.0

    def test_empty_database_scans(self, vocabulary):
        decision = choose_backend(PersonalDatabase(), vocabulary)
        assert decision.backend == "reference"
        assert decision.features.transactions == 0

    def test_real_history_indexes(self, vocabulary):
        member = travel.build_dataset().build_crowd(
            size=1, seed=7, transactions=20
        )[0]
        decision = choose_backend(member.database, vocabulary)
        assert decision.backend == "tid"
        assert decision.features.transactions == 20
        assert decision.features.taxonomy_terms > 50
        assert decision.features.taxonomy_height >= 3

    def test_fan_out_discounts_index_cost(self, vocabulary):
        db = PersonalDatabase.parse(["Basketball doAt Central Park"])
        alone = choose_backend(db, vocabulary)
        crowded = choose_backend(db, vocabulary, fan_out=32.0)
        assert crowded.tid_cost < alone.tid_cost
        assert crowded.features.fan_out == 32.0
        assert alone.features.fan_out == 0.0

    def test_features_read_the_compiled_closure(self, vocabulary):
        terms, height, avg_closure = vocabulary.element_order.closure_stats()
        db = PersonalDatabase.parse(["Basketball doAt Central Park"])
        features = choose_backend(db, vocabulary).features
        assert features.taxonomy_terms == terms
        assert features.taxonomy_height == height
        assert features.avg_closure == pytest.approx(avg_closure)

    def test_decision_memoized_until_a_stamp_moves(self, vocabulary):
        db = travel.build_dataset().build_crowd(
            size=1, seed=3, transactions=10
        )[0].database
        query = next(iter(db)).facts
        with tracing() as tracer:
            db.support(query, vocabulary)
            db.support(query, vocabulary)
        counters = tracer.report()["counters"]
        assert counters["backend.choose.tid"] == 1
        assert counters["backend.decisions.cached"] == 1
        assert counters["support.count.tid"] == 2

        # a data mutation moves the stamp and forces a fresh decision
        db.add(next(iter(db)))
        with tracing() as tracer:
            db.support(query, vocabulary)
        assert tracer.report()["counters"]["backend.choose.tid"] == 1

    def test_workload_hint_is_part_of_the_decision_key(self, vocabulary):
        db = travel.build_dataset().build_crowd(
            size=1, seed=3, transactions=10
        )[0].database
        query = next(iter(db)).facts
        with tracing() as tracer:
            db.support(query, vocabulary)
            db.set_workload_hint(24.0)
            db.support(query, vocabulary)
        counters = tracer.report()["counters"]
        assert counters["backend.choose.tid"] == 2  # re-decided on new hint

    def test_override_bypasses_the_model_and_counts(self, vocabulary):
        db = PersonalDatabase.parse(["Basketball doAt Central Park"])
        query = parse_fact_set("Sport doAt Park")
        previous = set_support_backend("tid")
        try:
            with tracing() as tracer:
                db.support(query, vocabulary)
        finally:
            set_support_backend(previous)
        counters = tracer.report()["counters"]
        assert counters["backend.overridden"] == 1
        assert counters["support.count.tid"] == 1
        assert "backend.choose.tid" not in counters

    def test_set_support_backend_round_trips(self):
        assert support_backend() == "adaptive"
        assert set_support_backend("reference") == "adaptive"
        assert set_support_backend("adaptive") == "reference"
        with pytest.raises(ValueError):
            set_support_backend("bogus")

    def test_backend_decision_reports_under_override(self, vocabulary):
        db = PersonalDatabase.parse(["Basketball doAt Central Park"])
        previous = set_support_backend("tid")
        try:
            decision = db.backend_decision(vocabulary)
        finally:
            set_support_backend(previous)
        # the report shows what adaptive *would* have chosen
        assert decision.backend == "reference"


# ---------------------------------------------------------- boundary shapes


class TestBoundaryShapes:
    def test_tiny_member_databases(self):
        """One-fact histories: the model picks the scan, results identical."""
        ontology = running_example.build_ontology()
        vocabulary = ontology.vocabulary
        histories = (
            ["Biking doAt Central Park"],
            ["Swimming doAt Bronx Zoo"],
            ["Basketball doAt Central Park"],
        )

        def build_members():
            return [
                CrowdMember(f"tiny-{i}", PersonalDatabase.parse(h), vocabulary)
                for i, h in enumerate(histories)
            ]

        msps, questions = _assert_backend_identity(
            build_members,
            ontology,
            running_example.FRAGMENT_QUERY,
            sample_size=3,
        )
        assert questions > 0
        # the toy taxonomy is narrow (avg closure < SCAN_WORK_FACTOR), so
        # even a one-fact DB indexes here; the scan side of the boundary
        # is asserted under the wide taxonomy below and in TestCostModel
        decision = choose_backend(
            PersonalDatabase.parse(histories[0]), vocabulary
        )
        assert decision.scan_cost == 1.0
        assert decision.backend == "tid"

    def test_paper_scale_wide_taxonomy(self):
        """A ≥1,000-term synthetic element order widens every closure the
        TID index unions over; all three modes must still agree."""
        ontology = running_example.build_ontology()
        vocabulary = ontology.vocabulary
        random_taxonomy(
            vocabulary, node_count=1200, depth=5, seed=9,
            extra_edge_probability=0.1,
        )
        databases = running_example.build_personal_databases()

        def build_members():
            return [
                CrowdMember(member_id, database, vocabulary)
                for member_id, database in sorted(databases.items())
            ]

        msps, questions = _assert_backend_identity(
            build_members,
            ontology,
            running_example.FRAGMENT_QUERY,
            sample_size=2,
        )
        assert questions > 0
        features = choose_backend(
            next(iter(databases.values())), vocabulary
        ).features
        assert features.taxonomy_terms > 1000

        # under the widened order a one-fact DB finally crosses the
        # boundary: one witness union costs more than the whole scan
        tiny = PersonalDatabase.parse(["Biking doAt Central Park"])
        assert choose_backend(tiny, vocabulary).backend == "reference"

    def test_high_fan_out_candidates(self):
        """Travel's lattice pushes a >10 fan-out hint into every member DB;
        the discounted decision still matches both forced backends."""
        dataset = travel.build_dataset()

        def build_members():
            return dataset.build_crowd(size=2, seed=5, transactions=6)

        msps, questions = _assert_backend_identity(
            build_members,
            dataset.ontology,
            dataset.query(threshold=0.3),
            sample_size=2,
        )
        assert questions > 100  # a real lattice walk, not a trivial run

        # the engine pushed the generator's fan-out into the hint
        members = build_members()
        engine = OassisEngine(
            dataset.ontology,
            config=EngineConfig(max_values_per_var=2, max_more_facts=0),
        )
        engine.execute(
            dataset.query(threshold=0.3), members, sample_size=2
        )
        hint = members[0].database.fan_out_hint
        assert hint is not None and hint > 10
