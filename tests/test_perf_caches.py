"""Behavioural tests for the perf-PR caches and their invalidation.

Covers the satellite fixes: the SPARQL engine no longer retains a stale
tracer across evaluations, the label reverse index stays consistent,
Reasoner memos invalidate on the version stamps, the personal-database hit
memo is bounded, and the engine's closure caches drop when the ontology
mutates mid-lifetime.
"""

import pytest

from repro.crowd.personal_db import HITS_CACHE_MAX, PersonalDatabase
from repro.observability import Tracer, tracing
from repro.ontology.facts import fact_set
from repro.ontology.graph import Ontology
from repro.ontology.reasoner import Reasoner
from repro.sparql.engine import SparqlEngine
from repro.sparql.parser import parse_bgp
from repro.vocabulary.terms import Element


@pytest.fixture()
def ontology():
    onto = Ontology()
    onto.add(("Biking", "subClassOf", "Sport"))
    onto.add(("Swimming", "subClassOf", "Sport"))
    onto.add(("GordonBeach", "instanceOf", "Beach"))
    onto.add(("Beach", "subClassOf", "Attraction"))
    onto.add(("GordonBeach", "inside", "TelAviv"))
    onto.add_label("GordonBeach", "family-friendly")
    return onto


class TestTracerLifecycle:
    def test_obs_cleared_after_solutions(self, ontology):
        engine = SparqlEngine(ontology)
        bgp = parse_bgp('$x inside TelAviv')
        with tracing() as tracer:
            list(engine.solutions(bgp))
            assert tracer.value("sparql.solutions") == 1
        # the trace has ended: the engine must not retain the dead tracer
        assert engine._obs is None
        results = list(engine.solutions(bgp))
        assert len(results) == 1
        assert engine._obs is None
        # no counting happened outside the trace
        assert tracer.value("sparql.solutions") == 1

    def test_fresh_tracer_picked_up_per_evaluation(self, ontology):
        engine = SparqlEngine(ontology)
        bgp = parse_bgp('$x inside TelAviv')
        with tracing() as first:
            list(engine.solutions(bgp))
        with tracing() as second:
            list(engine.solutions(bgp))
        assert first.value("sparql.solutions") == 1
        assert second.value("sparql.solutions") == 1

    def test_obs_cleared_after_ask(self, ontology):
        engine = SparqlEngine(ontology)
        with tracing():
            engine.ask(parse_bgp('$x inside TelAviv'))
        assert engine._obs is None


class TestLabelIndex:
    def test_reverse_index_matches_scan(self, ontology):
        expected = frozenset(
            e
            for e in ontology.vocabulary.elements
            if "family-friendly" in ontology.labels(e)
        )
        assert ontology.elements_with_label("family-friendly") == expected

    def test_index_updates_on_new_label(self, ontology):
        assert ontology.elements_with_label("quiet") == frozenset()
        ontology.add_label("Beach", "quiet")
        assert ontology.elements_with_label("quiet") == {Element("Beach")}

    def test_duplicate_label_is_idempotent(self, ontology):
        before = ontology.version
        ontology.add_label("GordonBeach", "family-friendly")
        assert ontology.version == before
        assert ontology.elements_with_label("family-friendly") == {
            Element("GordonBeach")
        }

    def test_copy_preserves_index(self, ontology):
        dup = ontology.copy()
        assert dup.elements_with_label("family-friendly") == {
            Element("GordonBeach")
        }


class TestEngineCacheInvalidation:
    def test_new_facts_visible_after_cached_evaluation(self, ontology):
        engine = SparqlEngine(ontology)
        bgp = parse_bgp('$x inside TelAviv')
        assert len(list(engine.solutions(bgp))) == 1
        ontology.add(("Pine", "inside", "TelAviv"))
        assert len(list(engine.solutions(bgp))) == 2

    def test_new_labels_visible_after_cached_evaluation(self, ontology):
        engine = SparqlEngine(ontology)
        bgp = parse_bgp('$x hasLabel "family-friendly"')
        assert len(list(engine.solutions(bgp))) == 1
        ontology.add_label("Beach", "family-friendly")
        assert len(list(engine.solutions(bgp))) == 2

    def test_closure_cache_counters_report(self, ontology):
        engine = SparqlEngine(ontology)
        bgp = parse_bgp('$x inside TelAviv')
        with tracing() as tracer:
            list(engine.solutions(bgp))
            list(engine.solutions(bgp))
        assert tracer.value("sparql.closure_cache.hits") >= 1


class TestReasonerMemos:
    def test_instances_memo_invalidated_by_new_fact(self, ontology):
        reasoner = Reasoner(ontology)
        assert Element("GordonBeach") in reasoner.instances("Attraction")
        ontology.add(("Pine", "instanceOf", "Beach"))
        assert Element("Pine") in reasoner.instances("Attraction")

    def test_instances_memo_repeated_query(self, ontology):
        reasoner = Reasoner(ontology)
        first = reasoner.instances("Attraction")
        assert reasoner.instances("Attraction") is first

    def test_lub_memo_invalidated_by_taxonomy_growth(self, ontology):
        reasoner = Reasoner(ontology)
        lub = reasoner.least_upper_bounds(Element("Biking"), Element("Swimming"))
        assert Element("Sport") in lub
        ontology.add(("WaterSport", "subClassOf", "Sport"))
        ontology.add(("Swimming", "subClassOf", "WaterSport"))
        refreshed = reasoner.least_upper_bounds(
            Element("Biking"), Element("Swimming")
        )
        assert Element("Sport") in refreshed

    def test_lub_memo_symmetric(self, ontology):
        reasoner = Reasoner(ontology)
        ab = reasoner.least_upper_bounds(Element("Biking"), Element("Swimming"))
        ba = reasoner.least_upper_bounds(Element("Swimming"), Element("Biking"))
        assert ab is ba


class TestBoundedHitsCache:
    def test_hits_cache_never_exceeds_cap(self, ontology):
        vocabulary = ontology.vocabulary
        db = PersonalDatabase.parse(["Biking doAt GordonBeach"])
        for i in range(HITS_CACHE_MAX + 50):
            db.support(fact_set((f"Q{i}", "doAt", "GordonBeach")), vocabulary)
        assert len(db._hits_cache) <= HITS_CACHE_MAX

    def test_eviction_keeps_answers_correct(self, ontology):
        vocabulary = ontology.vocabulary
        db = PersonalDatabase.parse(["Biking doAt GordonBeach"])
        target = fact_set(("Biking", "doAt", "GordonBeach"))
        assert db.support(target, vocabulary) == 1.0
        for i in range(HITS_CACHE_MAX + 10):
            db.support(fact_set((f"Q{i}", "doAt", "GordonBeach")), vocabulary)
        assert db.support(target, vocabulary) == 1.0
