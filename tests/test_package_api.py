"""Public-API integrity: every exported name resolves and is documented."""

import importlib

import pytest

import repro

SUBPACKAGES = [
    "repro.vocabulary",
    "repro.ontology",
    "repro.sparql",
    "repro.oassisql",
    "repro.assignments",
    "repro.crowd",
    "repro.mining",
    "repro.engine",
    "repro.service",
    "repro.nlg",
    "repro.observability",
    "repro.synth",
    "repro.datasets",
    "repro.experiments",
]


class TestExports:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", sorted(repro.__all__))
    def test_top_level_all_resolves(self, name):
        assert getattr(repro, name) is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolves(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, f"{module_name}.{name}"

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_docstrings(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    def test_public_classes_documented(self):
        undocumented = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if isinstance(obj, type) and not obj.__doc__:
                undocumented.append(name)
        assert not undocumented, f"classes without docstrings: {undocumented}"

    def test_cli_entrypoint_importable(self):
        from repro.cli import main

        assert callable(main)
