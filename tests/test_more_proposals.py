"""Tests for crowd-proposed MORE extensions (the UI's "more" button)."""

import pytest

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.crowd import CrowdMember, FixedSampleAggregator
from repro.datasets import running_example
from repro.engine.adapters import MemberUser
from repro.mining import MultiUserMiner
from repro.oassisql import parse_query
from repro.ontology import Fact, fact_set
from repro.vocabulary import Element
from repro.vocabulary.terms import ANY_ELEMENT


def E(name):
    return Element(name)


@pytest.fixture()
def space():
    ontology = running_example.build_ontology()
    query = parse_query(running_example.SAMPLE_QUERY)
    # no pool: MORE extensions only via proposals
    return QueryAssignmentSpace(
        ontology, query, max_values_per_var=2, max_more_facts=1
    )


@pytest.fixture()
def biking_node(space):
    return Assignment.make(
        space.vocabulary,
        {"x": {E("Central Park")}, "y": {E("Biking")}, "z": {E("Maoz Veg")},
         "__any_0": {ANY_ELEMENT}},
    )


class TestProposeMoreFact:
    def test_no_pool_means_no_more_successors(self, space, biking_node):
        assert not any(s.more for s in space.successors(biking_node))

    def test_proposal_becomes_successor(self, space, biking_node):
        tip = Fact("Rent Bikes", "doAt", "Boathouse")
        extended = space.propose_more_fact(biking_node, tip)
        assert extended is not None
        assert tip in extended.more
        assert extended in space.successors(biking_node)

    def test_proposal_idempotent(self, space, biking_node):
        tip = Fact("Rent Bikes", "doAt", "Boathouse")
        first = space.propose_more_fact(biking_node, tip)
        second = space.propose_more_fact(biking_node, tip)
        assert first == second
        with_more = [s for s in space.successors(biking_node) if s.more]
        assert len(with_more) == 1

    def test_budget_respected(self, space, biking_node):
        first = space.propose_more_fact(
            biking_node, Fact("Rent Bikes", "doAt", "Boathouse")
        )
        # max_more_facts=1: extending the extension is refused
        assert space.propose_more_fact(
            first, Fact("Pasta", "eatAt", "Pine")
        ) is None

    def test_query_without_more_refuses(self):
        ontology = running_example.build_ontology()
        query = parse_query(running_example.FRAGMENT_QUERY)  # no MORE
        space = QueryAssignmentSpace(ontology, query)
        node = space.roots()[0]
        assert space.propose_more_fact(
            node, Fact("Rent Bikes", "doAt", "Boathouse")
        ) is None


class TestMemberTips:
    @pytest.fixture()
    def member(self):
        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        return CrowdMember(
            "u1", dbs["u1"], ontology.vocabulary, more_tip_ratio=1.0
        )

    def test_suggests_cooccurring_fact(self, member):
        target = fact_set(
            ("Biking", "doAt", "Central Park"),
            (ANY_ELEMENT, "eatAt", "Maoz Veg"),
        )
        tip = member.suggest_more_fact(target, force=True)
        # both supporting transactions (T3, T4) rent bikes at the Boathouse
        assert tip == Fact("Rent Bikes", "doAt", "Boathouse")

    def test_no_tip_when_nothing_cooccurs(self, member):
        target = fact_set(("Feed a monkey", "doAt", "Bronx Zoo"))
        tip = member.suggest_more_fact(target, force=True)
        # Pasta at Pine co-occurs in 2 of 3 supporting transactions
        assert tip == Fact("Pasta", "eatAt", "Pine")

    def test_no_tip_without_support(self, member):
        target = fact_set(("Swimming", "doAt", "Central Park"))
        assert member.suggest_more_fact(target, force=True) is None

    def test_ratio_zero_never_volunteers(self):
        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        member = CrowdMember("u1", dbs["u1"], ontology.vocabulary,
                             more_tip_ratio=0.0)
        target = fact_set(("Biking", "doAt", "Central Park"))
        assert member.suggest_more_fact(target) is None


class TestEndToEndProposedMore:
    def test_tip_reaches_the_output(self):
        """A crowd of u_avg-like members proposes and verifies a MORE tip."""
        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        vocab = ontology.vocabulary
        query = parse_query(running_example.SAMPLE_QUERY)
        space = QueryAssignmentSpace(
            ontology, query, max_values_per_var=2, max_more_facts=1
        )

        class AvgMember(CrowdMember):
            def __init__(self, member_id):
                from repro.crowd import PersonalDatabase

                super().__init__(member_id, dbs["u1"], vocab, more_tip_ratio=1.0)

            def true_support(self, fact_set):
                return (
                    dbs["u1"].support(fact_set, vocab)
                    + dbs["u2"].support(fact_set, vocab)
                ) / 2

        members = [AvgMember(f"m{i}") for i in range(5)]
        aggregator = FixedSampleAggregator(0.4, sample_size=5)
        users = [MemberUser(m, space) for m in members]
        result = MultiUserMiner(space, users, aggregator).run()
        assert result.stats.more_tips > 0
        extended_msps = [m for m in result.valid_msps if m.more]
        assert extended_msps, "the Rent Bikes tip should survive as an MSP"
        assert any(
            Fact("Rent Bikes", "doAt", "Boathouse") in m.more
            for m in extended_msps
        )


class TestReplayKeepsProposals:
    def test_replay_on_shared_space_retains_more_extensions(self):
        """Threshold replay must see the crowd-proposed MORE extensions."""
        from repro.crowd import CrowdCache
        from repro.mining import replay_from_cache

        ontology = running_example.build_ontology()
        dbs = running_example.build_personal_databases()
        vocab = ontology.vocabulary
        query = parse_query(running_example.SAMPLE_QUERY)
        space = QueryAssignmentSpace(
            ontology, query, max_values_per_var=2, max_more_facts=1
        )

        class AvgMember(CrowdMember):
            def __init__(self, member_id):
                from repro.crowd import PersonalDatabase

                super().__init__(member_id, dbs["u1"], vocab, more_tip_ratio=1.0)

            def true_support(self, fact_set):
                return (
                    dbs["u1"].support(fact_set, vocab)
                    + dbs["u2"].support(fact_set, vocab)
                ) / 2

        members = [AvgMember(f"m{i}") for i in range(5)]
        cache = CrowdCache()
        aggregator = FixedSampleAggregator(0.4, sample_size=5)
        users = [MemberUser(m, space) for m in members]
        base = MultiUserMiner(space, users, aggregator, cache=cache).run()
        base_extended = [m for m in base.valid_msps if m.more]
        assert base_extended

        # same threshold replay on the SAME space keeps the extension
        replayed = replay_from_cache(space, cache, 0.4, sample_size=5)
        assert any(m.more for m in replayed.valid_msps)

        # a fresh space (no proposals) would lose it
        fresh = QueryAssignmentSpace(
            ontology, query, max_values_per_var=2, max_more_facts=1
        )
        replayed_fresh = replay_from_cache(fresh, cache, 0.4, sample_size=5)
        assert not any(m.more for m in replayed_fresh.valid_msps)
