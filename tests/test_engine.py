"""End-to-end engine tests: parse → mine → results, replay, queue manager."""

import pytest

from repro import CrowdCache, CrowdMember, EngineConfig, OassisEngine
from repro.datasets import running_example
from repro.oassisql import ValidationError
from repro.vocabulary import Element


def E(name):
    return Element(name)


class AverageMember(CrowdMember):
    """The paper's ``u_avg``: answers with the average of u1 and u2."""

    def __init__(self, member_id, databases, vocabulary):
        from repro.crowd import PersonalDatabase

        super().__init__(member_id, PersonalDatabase(), vocabulary)
        self._databases = databases

    def true_support(self, fact_set):
        supports = [
            db.support(fact_set, self.vocabulary)
            for db in self._databases.values()
        ]
        return sum(supports) / len(supports)


@pytest.fixture(scope="module")
def setting():
    ontology = running_example.build_ontology()
    dbs = running_example.build_personal_databases()
    engine = OassisEngine(
        ontology, config=EngineConfig(max_values_per_var=2, max_more_facts=1)
    )
    vocab = ontology.vocabulary
    # five u_avg members so the 5-answer aggregator can decide (Example 4.6)
    members = [AverageMember(f"avg-{i}", dbs, vocab) for i in range(5)]
    return engine, members


class TestParse:
    def test_parse_validates(self, setting):
        engine, _ = setting
        query = engine.parse(running_example.SAMPLE_QUERY)
        assert query.threshold == 0.4

    def test_parse_rejects_unknown_terms(self, setting):
        engine, _ = setting
        with pytest.raises(ValidationError):
            engine.parse(
                "SELECT FACT-SETS WHERE $x inside Paris "
                "SATISFYING $x doAt NYC WITH SUPPORT = 0.3"
            )


class TestExecute:
    @pytest.fixture(scope="class")
    def result(self, setting):
        engine, members = setting
        return engine.execute(
            running_example.FRAGMENT_QUERY, members, sample_size=5
        )

    def test_expected_msps_found(self, result):
        found = {
            tuple(sorted((k, tuple(v)) for k, v in row.variables().items()))
            for row in result
        }
        expected_biking = (("x", ("Central Park",)), ("y", ("Biking",)))
        expected_monkey = (("x", ("Bronx Zoo",)), ("y", ("Feed a monkey",)))
        assert tuple(sorted(expected_biking)) in found
        assert tuple(sorted(expected_monkey)) in found

    def test_supports_reported(self, result):
        for row in result:
            assert row.support is not None
            assert row.support >= 0.4

    def test_render_mentions_facts(self, result):
        text = result.render()
        assert "doAt" in text
        assert "question" in text

    def test_rows_only_valid_by_default(self, result):
        assert all(row.valid for row in result)


class TestSingleUser:
    def test_execute_single_user(self, setting):
        engine, members = setting
        result = engine.execute_single_user(
            running_example.FRAGMENT_QUERY, members[0]
        )
        bindings = [row.variables() for row in result]
        assert {"x": ["Central Park"], "y": ["Biking"]} in bindings

    def test_single_user_supports_are_personal(self, setting):
        engine, members = setting
        result = engine.execute_single_user(
            running_example.FRAGMENT_QUERY, members[0]
        )
        for row in result:
            assert row.support == pytest.approx(row.support, abs=1e-9)


class TestReplay:
    def test_threshold_replay_uses_cache(self, setting):
        engine, members = setting
        cache = CrowdCache()
        base = engine.execute(
            running_example.FRAGMENT_QUERY, members, sample_size=5, cache=cache
        )
        member_ids = [m.member_id for m in members]
        replayed, mined = engine.replay(
            running_example.FRAGMENT_QUERY,
            member_ids,
            cache,
            threshold=0.45,
            sample_size=5,
        )
        assert mined.questions <= base.questions
        # at 0.45, Ball Game at Central Park (avg 5/12 ~ 0.417) drops out
        bindings = [row.variables() for row in replayed]
        assert {"x": ["Central Park"], "y": ["Ball Game"]} not in bindings


class TestQueueManager:
    def test_interactive_flow(self, setting):
        engine, members = setting
        qm = engine.queue_manager(running_example.FRAGMENT_QUERY, sample_size=1)
        member = members[0]
        answered = 0
        while answered < 500:
            question = qm.next_question(member.member_id)
            if question is None:
                break
            support = member.true_support(
                qm.space.instantiate(question.assignment)
            )
            qm.submit_support(member.member_id, support)
            answered += 1
        assert qm.is_complete()
        msps = qm.current_msps()
        vocab = qm.space.vocabulary
        from repro.assignments import Assignment

        assert Assignment.make(
            vocab, {"x": {E("Central Park")}, "y": {E("Biking")}}
        ) in msps

    def test_pending_question_returned_again(self, setting):
        engine, members = setting
        qm = engine.queue_manager(running_example.FRAGMENT_QUERY, sample_size=1)
        first = qm.next_question("u")
        second = qm.next_question("u")
        assert first is second

    def test_submit_without_pending_raises(self, setting):
        engine, _ = setting
        qm = engine.queue_manager(running_example.FRAGMENT_QUERY)
        with pytest.raises(RuntimeError):
            qm.submit_support("ghost", 0.5)

    def test_question_text_is_natural_language(self, setting):
        engine, _ = setting
        qm = engine.queue_manager(running_example.FRAGMENT_QUERY)
        question = qm.next_question("u")
        assert question.text.startswith("How often do you")

    def test_prune_click(self, setting):
        engine, members = setting
        qm = engine.queue_manager(running_example.FRAGMENT_QUERY, sample_size=1)
        question = qm.next_question("u")
        # prune the whole Activity subtree: queue should dry up quickly
        qm.submit_prune("u", E("Activity"))
        remaining = 0
        while qm.next_question("u") is not None and remaining < 100:
            qm.submit_support("u", 0.0)
            remaining += 1
        assert remaining == 0


class TestMemberScreening:
    def test_spammers_flagged_cooperative_kept(self, setting):
        import random

        from repro.crowd import SpammerMember
        from repro.datasets import running_example as rex

        engine, members = setting
        ontology = rex.build_ontology()
        spammers = [
            SpammerMember(f"spam-{i}", ontology.vocabulary, rng=random.Random(i))
            for i in range(3)
        ]
        kept, flagged = engine.screen_members(
            rex.FRAGMENT_QUERY, list(members) + spammers, probes_per_member=8
        )
        kept_ids = {m.member_id for m in kept}
        # every cooperative u_avg member survives screening
        assert all(m.member_id in kept_ids for m in members)
        # most spammers are caught (random answers may occasionally pass)
        assert len(flagged) >= 2

    def test_screening_returns_partition(self, setting):
        engine, members = setting
        kept, flagged = engine.screen_members(
            __import__("repro.datasets", fromlist=["running_example"])
            .running_example.FRAGMENT_QUERY,
            members,
        )
        assert len(kept) + len(flagged) == len(members)
