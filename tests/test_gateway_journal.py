"""Durable gateway sessions: journal fold, compaction, crash restore.

The pure layer (:class:`~repro.gateway.journal.GatewayLogState` folding,
compaction, torn-tail tolerance) is tested straight against journal
files; the crash-recovery layer drives a real loopback gateway, stops
its server cold mid-campaign, rebuilds a fresh
:class:`~repro.gateway.app.GatewayApp` from the same journal and holds
the resumed campaign to the serial-MSP-identity oracle.  The fault
matrix (``DISCONNECT`` wire drops plus deliberate duplicate deliveries
under one idempotency key, spanning a restart) reuses the total-chaos
campaign driver so the test gates exactly what CI's kill-anything job
gates.
"""

import threading
import time

import pytest

from repro.crowd.questions import ConcreteQuestion
from repro.engine.engine import OassisEngine
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.faults.total_chaos import _gateway_campaign
from repro.gateway import (
    GatewayApp,
    GatewayClient,
    GatewayConfig,
    GatewayJournal,
    replay_gateway_journal,
    serve_in_thread,
)
from repro.gateway.schema import facts_from_wire
from repro.service.simulation import DOMAINS, build_identical_crowd


def seed_journal(path, answers=40):
    """A synthetic but well-formed journal: 4 members, 1 session, answers."""
    dataset = DOMAINS["demo"]()
    entries = [
        (f"q{i + 1}", "g1", f"key-{i % 7}", f"m{i % 4}") for i in range(answers)
    ]
    with GatewayJournal(path) as journal:
        journal.log_activate("demo")
        for i in range(4):
            journal.log_join(f"m{i}", f"token-{i}")
        journal.log_query("g1", dataset.query(0.4), 3)
        journal.log_mint(entries)
        for qid, sid, key, member in entries:
            journal.log_answer(
                qid=qid,
                session_id=sid,
                key=key,
                member_id=member,
                support=0.5,
                outcome="recorded",
                idempotency_key=f"{member}:{qid}",
            )
    return entries


class TestLogStateFold:
    def test_fold_roundtrip_through_a_real_file(self, tmp_path):
        path = tmp_path / "gw.journal"
        entries = seed_journal(path, answers=10)
        state = replay_gateway_journal(path)
        assert state.corrupt == 0
        assert state.dataset == "demo"
        assert state.members == {f"m{i}": f"token-{i}" for i in range(4)}
        assert set(state.sessions) == {"g1"}
        assert state.sessions["g1"][1] == 3
        assert set(state.mints) == {qid for qid, *_ in entries}
        assert state.answered == {qid: "recorded" for qid, *_ in entries}

    def test_activate_resets_prior_state(self, tmp_path):
        path = tmp_path / "gw.journal"
        with GatewayJournal(path) as journal:
            journal.log_activate("demo")
            journal.log_join("m0", "token-0")
            journal.log_query("g1", "whatever", 3)
            journal.log_activate("travel")
        state = replay_gateway_journal(path)
        assert state.dataset == "travel"
        assert state.members == {}
        assert state.sessions == {}

    def test_answers_dedupe_by_session_key_member(self, tmp_path):
        path = tmp_path / "gw.journal"
        with GatewayJournal(path) as journal:
            journal.log_activate("demo")
            for qid in ("q1", "q2"):  # same node retried under a fresh qid
                journal.log_answer(
                    qid=qid, session_id="g1", key="k", member_id="m0",
                    support=0.5, outcome="recorded", idempotency_key="m0:q1",
                )
        state = replay_gateway_journal(path)
        assert len(state.answers) == 1
        assert state.answers[0]["qid"] == "q1"
        # both qids stay answerable, the idempotency key keeps its
        # first outcome, but the session cache is charged exactly once
        assert set(state.answered) == {"q1", "q2"}
        assert state.idempotency["m0:q1"] == ("q1", "recorded")

    def test_ordinal_high_water_marks(self, tmp_path):
        path = tmp_path / "gw.journal"
        with GatewayJournal(path) as journal:
            journal.log_activate("demo")
            journal.log_query("g7", "q", 3)
            journal.log_mint([("q41", "g7", "k", "m0")])
        state = replay_gateway_journal(path)
        assert state.max_qid_ordinal() == 41
        assert state.max_session_ordinal() == 7

    def test_torn_tail_and_unknown_records_are_skipped(self, tmp_path):
        path = tmp_path / "gw.journal"
        seed_journal(path, answers=5)
        with path.open("a", encoding="utf-8") as handle:
            handle.write('{"t": "from-the-future", "v": 99}\n')
            handle.write('{"t": "answer", "qid"')  # the torn tail
        state = replay_gateway_journal(path)
        assert state.corrupt == 2
        assert state.dataset == "demo"
        assert len(state.answered) == 5


class TestCompaction:
    def test_compact_preserves_the_folded_state(self, tmp_path):
        path = tmp_path / "gw.journal"
        seed_journal(path, answers=40)
        before = replay_gateway_journal(path)
        with GatewayJournal(path) as journal:
            written = journal.compact()
        after = replay_gateway_journal(path)
        assert written < 40 + 6  # the duplicate identities collapsed
        for field in ("dataset", "members", "sessions", "mints", "answers"):
            assert getattr(after, field) == getattr(before, field), field
        # duplicate-identity retries lose their per-qid outcome marker to
        # the rewrite, but every one of those qids stays resolvable via
        # the mint ledger (stale, not 404) and the canonical first
        # application per identity keeps its outcome and its key
        assert after.answered.items() <= before.answered.items()
        assert after.idempotency.items() <= before.idempotency.items()
        assert set(before.answered) <= set(after.answered) | set(after.mints)
        canonical = {answer["qid"] for answer in before.answers}
        assert canonical <= set(after.answered)

    def test_appends_keep_landing_after_a_compact(self, tmp_path):
        path = tmp_path / "gw.journal"
        seed_journal(path, answers=4)
        with GatewayJournal(path) as journal:
            journal.compact()
            journal.log_join("late", "token-late")
        state = replay_gateway_journal(path)
        assert state.members["late"] == "token-late"

    def test_compaction_racing_a_live_restore(self, tmp_path):
        # the rewrite is an atomic os.replace, so a reader — including a
        # restoring GatewayApp — must always see a complete journal,
        # never a half-written one
        path = tmp_path / "gw.journal"
        seed_journal(path, answers=40)
        baseline = replay_gateway_journal(path)
        stop = threading.Event()

        def compactor():
            while not stop.is_set():
                with GatewayJournal(path) as journal:
                    journal.compact()

        thread = threading.Thread(target=compactor, daemon=True)
        thread.start()
        try:
            for _ in range(20):
                # depending on when the swap lands this replay sees the
                # raw journal or a compacted snapshot — both must fold
                # to the same canonical state, never to a torn hybrid
                state = replay_gateway_journal(path)
                assert state.corrupt == 0
                assert state.members == baseline.members
                assert state.mints == baseline.mints
                assert state.answers == baseline.answers
                assert state.idempotency.items() <= baseline.idempotency.items()
                assert set(baseline.answered) <= (
                    set(state.answered) | set(state.mints)
                )
            for _ in range(3):
                app = GatewayApp(journal_path=path)
                try:
                    assert app.restored is not None
                    assert app.restored["sessions"] == 1
                    assert app.restored["members"] == 4
                    assert app.restored["failures"] == 0
                finally:
                    app.close()
        finally:
            stop.set()
            thread.join(timeout=10.0)


def _pump(client, member, wait):
    """Drain one poll: answer everything offered, return the applications."""
    applied = []
    batch = client.next_questions(wait=wait)
    for question in batch.questions:
        answer = member.answer_concrete(
            ConcreteQuestion(question.qid, facts_from_wire(question.facts))
        )
        key = f"{member.member_id}:{question.qid}"
        response = client.submit_answer(
            question.qid, answer.support, idempotency_key=key
        )
        applied.append((question.qid, key, answer.support, response.outcome))
    return applied


class TestCrashRestore:
    def test_fresh_journal_restores_nothing(self, tmp_path):
        app = GatewayApp(journal_path=tmp_path / "gw.journal")
        try:
            assert app.restored is None
            assert app.journal is not None
        finally:
            app.close()

    def test_restart_resumes_sessions_tokens_and_idempotency(self, tmp_path):
        journal = tmp_path / "gw.journal"
        dataset = DOMAINS["demo"]()
        crowd = build_identical_crowd(dataset, 3, seed=0)
        config = GatewayConfig(question_timeout=60.0)

        app = GatewayApp(journal_path=journal, config=config)
        handle = serve_in_thread(app)
        admin = GatewayClient(handle.host, handle.port)
        admin.activate("demo")
        accepted = admin.pose_query(
            query=dataset.query(0.4), sample_size=3, session_id="s0"
        )
        tokens = {m.member_id: admin.join(m.member_id).token for m in crowd}
        clients = {
            m.member_id: GatewayClient(
                handle.host, handle.port, token=tokens[m.member_id]
            )
            for m in crowd
        }

        # answer a handful of questions, then leave one minted question
        # un-answered so a pre-crash qid survives into the next process
        applied = []
        deadline = time.monotonic() + 30.0
        while len(applied) < 3 and time.monotonic() < deadline:
            for member in crowd:
                applied += _pump(clients[member.member_id], member, wait=0.2)
        assert applied, "campaign never produced an answerable question"
        orphan = None
        while orphan is None and time.monotonic() < deadline:
            for member in crowd:
                batch = clients[member.member_id].next_questions(wait=0.2)
                if batch.questions:
                    orphan = (member.member_id, batch.questions[0].qid)
                    break

        # crash: stop the server and drop every in-memory structure;
        # close() only releases the journal handle — appends are on disk
        handle.stop()
        app.close()
        for client in clients.values():
            client.close()
        admin.close()

        app2 = GatewayApp(journal_path=journal, config=config)
        assert app2.restored is not None
        assert app2.restored["sessions"] == 1
        assert app2.restored["members"] == 3
        assert app2.restored["failures"] == 0
        handle2 = serve_in_thread(app2)
        clients = {
            m.member_id: GatewayClient(
                handle2.host, handle2.port, token=tokens[m.member_id]
            )
            for m in crowd
        }
        admin = GatewayClient(handle2.host, handle2.port)
        try:
            # original bearer tokens authenticate against the successor
            # (a dead token would 401 here); everything minted by the
            # probe is answered, not left to wedge its node
            for member in crowd:
                _pump(clients[member.member_id], member, wait=0.0)

            # a pre-crash qid is stale, never 404 (its node gets a fresh
            # dispatch from the session layer)
            if orphan is not None:
                member_id, qid = orphan
                stale = clients[member_id].submit_answer(qid, 0.5)
                assert stale.outcome == "stale"

            # idempotency keys dedupe across the restart: the retry
            # reports the pre-crash outcome without a second application
            qid, key, support, outcome = applied[0]
            for member in crowd:
                if key.startswith(member.member_id + ":"):
                    retry = clients[member.member_id].submit_answer(
                        qid, support, idempotency_key=key
                    )
                    assert retry.outcome == outcome

            # the resumed campaign must land on the serial MSP set
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                for member in crowd:
                    _pump(clients[member.member_id], member, wait=0.2)
                result = admin.result("s0")
                if result.done:
                    break
            assert result.done, "resumed campaign never settled"
            engine = OassisEngine(dataset.ontology)
            serial = engine.execute(
                accepted.query,
                build_identical_crowd(dataset, 3, seed=0, prefix="serial-m"),
                sample_size=3,
            )
            assert list(result.msps) == sorted(
                repr(a) for a in serial.all_msps
            )
        finally:
            for client in clients.values():
                client.close()
            admin.close()
            handle2.stop()
            app2.close()


class TestFaultsAcrossRestart:
    def test_disconnects_and_duplicate_deliveries_span_a_restart(self):
        # DISCONNECT wire faults drop connections mid-request, members
        # deliberately re-deliver every 2nd applied answer under its
        # original idempotency key, and the gateway is killed and
        # journal-restored mid-campaign — still exactly-once, still the
        # serial MSP set
        plan = FaultPlan(
            [
                FaultSpec(
                    "gateway.request", FaultKind.DISCONNECT, rate=0.03, limit=5
                )
            ],
            seed=1,
        )
        report = _gateway_campaign(
            seed=1,
            domain="demo",
            sessions=2,
            crowd_size=4,
            sample_size=3,
            kill_after_questions=3,
            faults=plan,
            duplicate_every=2,
            wait=0.2,
            max_runtime=90.0,
        )
        assert report["ok"], report["violations"]
        assert report["killed"]
        assert report["restored"]["sessions"] >= 1
        assert report["duplicates_sent"] >= 1
        assert report["reasks"] == 0
        assert report["double_charges"] == 0
