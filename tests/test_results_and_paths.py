"""Coverage for result assembly, bindings and the path evaluator internals."""

import pytest

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.datasets import running_example
from repro.engine.results import QueryResult, ResultRow, build_result
from repro.oassisql import parse_query
from repro.sparql.ast import PathMod
from repro.sparql.bindings import Binding
from repro.sparql.paths import (
    backward_closure,
    forward_closure,
    matching_relations,
    path_pairs,
)
from repro.vocabulary import Element, Relation


@pytest.fixture(scope="module")
def ontology():
    return running_example.build_ontology()


class TestBinding:
    def test_mapping_protocol(self):
        binding = Binding({"x": Element("NYC")})
        assert binding["x"] == Element("NYC")
        assert list(binding) == ["x"]
        assert len(binding) == 1
        with pytest.raises(KeyError):
            binding["y"]

    def test_equality_with_dict(self):
        binding = Binding({"x": Element("NYC")})
        assert binding == {"x": Element("NYC")}
        assert binding == Binding({"x": Element("NYC")})

    def test_hashable_and_project(self):
        binding = Binding({"x": Element("NYC"), "y": Element("Park")})
        assert len({binding, Binding(binding.as_dict())}) == 1
        projected = binding.project(["x"])
        assert projected == {"x": Element("NYC")}


class TestPaths:
    def test_matching_relations_includes_specializations(self, ontology):
        relations = matching_relations(ontology, Relation("nearBy"))
        assert Relation("inside") in relations
        assert Relation("nearBy") in relations

    def test_matching_relations_unknown(self, ontology):
        assert matching_relations(ontology, Relation("flysTo")) == {Relation("flysTo")}

    def test_forward_closure_star(self, ontology):
        closure = forward_closure(
            ontology, Element("Basketball"), Relation("subClassOf"), PathMod.STAR
        )
        assert Element("Basketball") in closure
        assert Element("Activity") in closure

    def test_forward_closure_plus_excludes_start(self, ontology):
        closure = forward_closure(
            ontology, Element("Basketball"), Relation("subClassOf"), PathMod.PLUS
        )
        assert Element("Basketball") not in closure
        assert Element("Ball Game") in closure

    def test_forward_closure_opt(self, ontology):
        closure = forward_closure(
            ontology, Element("Basketball"), Relation("subClassOf"), PathMod.OPT
        )
        assert closure == {Element("Basketball"), Element("Ball Game")}

    def test_backward_closure_star(self, ontology):
        closure = backward_closure(
            ontology, Element("Activity"), Relation("subClassOf"), PathMod.STAR
        )
        assert Element("Basketball") in closure
        assert Element("Activity") in closure

    def test_backward_closure_plus(self, ontology):
        closure = backward_closure(
            ontology, Element("Activity"), Relation("subClassOf"), PathMod.PLUS
        )
        assert Element("Activity") not in closure
        assert Element("Sport") in closure

    def test_backward_closure_none(self, ontology):
        closure = backward_closure(
            ontology, Element("NYC"), Relation("inside"), PathMod.NONE
        )
        assert Element("Central Park") in closure

    def test_path_pairs_star_contains_identity(self, ontology):
        pairs = set(path_pairs(ontology, Relation("subClassOf"), PathMod.STAR))
        assert (Element("Sport"), Element("Sport")) in pairs
        # subClassOf edges point specific -> general in RDF direction
        assert (Element("Basketball"), Element("Sport")) in pairs

    def test_path_pairs_none_lists_edges(self, ontology):
        pairs = set(path_pairs(ontology, Relation("inside"), PathMod.NONE))
        assert (Element("Central Park"), Element("NYC")) in pairs


class TestResults:
    @pytest.fixture(scope="class")
    def space(self, ontology):
        query = parse_query(running_example.FRAGMENT_QUERY)
        return QueryAssignmentSpace(ontology, query, max_values_per_var=1)

    def test_build_result_filters_invalid(self, space, ontology):
        vocab = ontology.vocabulary
        valid = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        invalid = Assignment.make(
            vocab, {"x": {Element("Park")}, "y": {Element("Biking")}}
        )
        query = parse_query(running_example.FRAGMENT_QUERY)
        result = build_result(query, space, [valid, invalid], 10)
        assert len(result) == 1
        assert result.rows[0].valid

    def test_include_invalid(self, space, ontology):
        vocab = ontology.vocabulary
        invalid = Assignment.make(
            vocab, {"x": {Element("Park")}, "y": {Element("Biking")}}
        )
        query = parse_query(running_example.FRAGMENT_QUERY)
        result = build_result(query, space, [invalid], 5, include_invalid=True)
        assert len(result) == 1
        assert not result.rows[0].valid

    def test_rows_sorted_by_support(self, space, ontology):
        vocab = ontology.vocabulary
        a = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        b = Assignment.make(
            vocab, {"x": {Element("Bronx Zoo")}, "y": {Element("Feed a monkey")}}
        )
        supports = {a: 0.4, b: 0.9}
        query = parse_query(running_example.FRAGMENT_QUERY)
        result = build_result(query, space, [a, b], 5, support_of=supports.get)
        assert result.rows[0].support == 0.9

    def test_variables_hide_internal_names(self, space, ontology):
        vocab = ontology.vocabulary
        row = ResultRow(
            Assignment.make(
                vocab,
                {"x": {Element("Central Park")}, "__any_0": {Element("NYC")}},
            ),
            space.instantiate(
                Assignment.make(
                    vocab,
                    {"x": {Element("Central Park")}, "y": {Element("Biking")}},
                )
            ),
            0.5,
            True,
        )
        assert "__any_0" not in row.variables()

    def test_fact_sets_accessor(self, space, ontology):
        vocab = ontology.vocabulary
        a = Assignment.make(
            vocab, {"x": {Element("Central Park")}, "y": {Element("Biking")}}
        )
        query = parse_query(running_example.FRAGMENT_QUERY)
        result = build_result(query, space, [a], 1)
        assert len(result.fact_sets()) == 1
