"""Tests for the process-sharded serving layer (``repro.service.shard``).

The pure pieces (hash ring, quota split, wire framing, shared-memory
closures) get direct unit tests; the coordinator is exercised end to end
through :func:`run_sharded_simulation` under the serial-MSP-identity
oracle — including the kill-one-shard → WAL-restore chaos scenario.
Worker processes use the ``spawn`` start method, so every end-to-end
test here actually crosses a process boundary.
"""

import socket

import pytest

from repro.engine.engine import OassisEngine
from repro.service.shard import (
    DEFAULT_REPLICAS,
    HashRing,
    ShardCoordinator,
    run_shard_chaos_once,
    run_sharded_simulation,
    split_quota,
)
from repro.service.shard.closures import SharedClosures, adopt_shared_closures
from repro.service.shard.protocol import (
    MAX_FRAME_BYTES,
    FRAME_HEADER,
    ProtocolError,
    recv_frame,
    runs_clip,
    runs_merge,
    runs_total,
    send_frame,
)
from repro.service.shard.worker import member_ids
from repro.service.simulation import DOMAINS, run_simulation


class TestHashRing:
    def test_partition_covers_members_exactly_once(self):
        ring = HashRing(3)
        members = member_ids(50)
        partition = ring.partition(members)
        assert sorted(sum(partition, [])) == sorted(members)

    def test_partition_is_process_independent(self):
        # two independent instances (as coordinator and worker build
        # them) must agree on every placement
        members = member_ids(200)
        first = HashRing(4).partition(members)
        second = HashRing(4).partition(members)
        assert first == second

    def test_shard_of_matches_partition(self):
        ring = HashRing(4)
        members = member_ids(40)
        partition = ring.partition(members)
        for shard, mine in enumerate(partition):
            for member in mine:
                assert ring.shard_of(member) == shard

    def test_single_shard_takes_everything(self):
        ring = HashRing(1, replicas=DEFAULT_REPLICAS)
        assert ring.partition(member_ids(10)) == [member_ids(10)]

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, replicas=0)


class TestSplitQuota:
    def test_sums_to_total_and_respects_weights(self):
        weights = [3, 1, 0, 2]
        quota = split_quota(4, weights)
        assert sum(quota) == 4
        assert all(q <= w for q, w in zip(quota, weights))
        assert quota[2] == 0  # empty shard never gets quota

    def test_deterministic(self):
        assert split_quota(5, [2, 2, 2]) == split_quota(5, [2, 2, 2])

    def test_total_beyond_capacity_rejected(self):
        with pytest.raises(ValueError):
            split_quota(7, [2, 2, 2])


class TestProtocol:
    def roundtrip(self, payload):
        a, b = socket.socketpair()
        try:
            send_frame(a, payload)
            return recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_frame_roundtrip(self):
        payload = {"t": "delta", "qid": 7, "runs": [[0.5, 3]]}
        assert self.roundtrip(payload) == payload

    def test_clean_eof_returns_none(self):
        a, b = socket.socketpair()
        a.close()
        try:
            assert recv_frame(b) is None
        finally:
            b.close()

    def test_torn_frame_raises(self):
        a, b = socket.socketpair()
        try:
            # a length prefix promising more bytes than ever arrive —
            # the kill-mid-conversation case
            a.sendall(FRAME_HEADER.pack(100) + b'{"t":')
            a.close()
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            b.close()

    def test_oversized_claim_rejected_without_allocating(self):
        a, b = socket.socketpair()
        try:
            a.sendall(FRAME_HEADER.pack(MAX_FRAME_BYTES + 1))
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_untyped_payload_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b'{"qid": 1}'
            a.sendall(FRAME_HEADER.pack(len(body)) + body)
            with pytest.raises(ProtocolError):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_runs_helpers(self):
        runs = []
        runs_merge(runs, 1.0)
        runs_merge(runs, 1.0, 2)
        runs_merge(runs, 0.0)
        assert runs == [[1.0, 3], [0.0, 1]]
        assert runs_total(runs) == 4
        assert runs_clip(runs, 3) == [[1.0, 3]]
        assert runs_clip(runs, 4) == runs


class TestSharedClosures:
    def test_export_adopt_roundtrip(self):
        exporter = DOMAINS["demo"]().ontology.vocabulary
        adopter = DOMAINS["demo"]().ontology.vocabulary
        shared = SharedClosures(exporter)
        try:
            adopt_shared_closures(shared.name, adopter)
        finally:
            shared.unlink()
        # adopted closures answer exactly like locally compiled ones
        for order in ("element_order", "relation_order"):
            assert getattr(adopter, order).closure_signature() == getattr(
                exporter, order
            ).closure_signature()

    def test_structural_mismatch_rejected(self):
        exporter = DOMAINS["demo"]().ontology.vocabulary
        stranger = DOMAINS["travel"]().ontology.vocabulary
        shared = SharedClosures(exporter)
        try:
            with pytest.raises(ValueError):
                adopt_shared_closures(shared.name, stranger)
        finally:
            shared.unlink()

    def test_unlink_is_idempotent(self):
        shared = SharedClosures(DOMAINS["demo"]().ontology.vocabulary)
        shared.unlink()
        shared.unlink()


class TestShardedIdentity:
    """The tentpole oracle: serial MSP identity at every shard count."""

    @pytest.mark.parametrize("shards", [1, 2, 3, 4])
    def test_identity_across_shard_counts(self, shards):
        report = run_sharded_simulation(
            domain="demo", shards=shards, sessions=4, crowd_size=6,
            sample_size=3, max_runtime=120.0, verify=True, seed=0,
        )
        assert report["verified"], report["mismatches"]
        assert not report["timed_out"]
        states = [info["state"] for info in report["sessions"].values()]
        assert states == ["completed"] * 4
        assert len(report["partition_sizes"]) == shards
        assert sum(report["partition_sizes"]) == 6
        assert sum(report["quotas"]) == 3

    def test_shards_never_recompile_closures(self):
        report = run_sharded_simulation(
            domain="demo", shards=2, sessions=2, crowd_size=6,
            sample_size=3, verify=False, seed=0,
        )
        assert all(
            stats["compiles"] == 0 for stats in report["shard_stats"].values()
        )

    def test_durable_runs_replay_wals_on_restart(self, tmp_path):
        first = run_sharded_simulation(
            domain="demo", shards=2, sessions=2, crowd_size=6,
            sample_size=3, verify=False, seed=0, durable_dir=tmp_path,
        )
        assert first["wal_replayed"] == 0
        again = run_sharded_simulation(
            domain="demo", shards=2, sessions=2, crowd_size=6,
            sample_size=3, verify=True, seed=0, durable_dir=tmp_path,
        )
        # the second fleet starts from the first fleet's journals and
        # still lands on the serial MSP set
        assert again["wal_replayed"] > 0
        assert again["verified"], again["mismatches"]

    def test_verify_crowd_size_validated(self):
        with pytest.raises(ValueError):
            run_sharded_simulation(
                domain="demo", shards=1, sessions=1, crowd_size=6,
                sample_size=3, verify_crowd_size=2,
            )


class TestKillRestore:
    def test_kill_one_shard_wal_restore_identity(self, tmp_path):
        result = run_shard_chaos_once(
            seed=0, domain="demo", shards=3, sessions=4, crowd_size=6,
            sample_size=3, after_nodes=5, durable_dir=tmp_path,
        )
        assert result["triggered"]
        assert result["ok"], result["violations"]
        assert result["reasks"] >= 0
        assert result["completed_sessions"] == result["sessions"]

    def test_victim_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            run_shard_chaos_once(seed=0, shards=2, kill_shard=5)


class TestFacadeAndRouting:
    def test_run_simulation_routes_shards(self):
        report = run_simulation(domain="demo", sessions=2, shards=2,
                                crowd_size=6, sample_size=3, verify=True)
        assert report["shards"] == 2
        assert report["verified"], report["mismatches"]

    def test_thread_mode_fault_knobs_rejected_in_shard_mode(self):
        with pytest.raises(ValueError, match="drop_every"):
            run_simulation(domain="demo", sessions=2, shards=2, drop_every=5)

    def test_engine_facade_builds_coordinator(self):
        demo = DOMAINS["demo"]()
        engine = OassisEngine(demo.ontology)
        coordinator = engine.shard_coordinator(
            demo, shards=2, crowd_size=6, sample_size=3, domain="demo"
        )
        assert isinstance(coordinator, ShardCoordinator)
        # construction is cheap and spawn-free; start() is what forks
        assert coordinator.shards == 2

    def test_zero_shards_stays_threaded(self):
        report = run_simulation(domain="demo", sessions=1, workers=1,
                                shards=0, crowd_size=6, sample_size=3,
                                verify=False, max_runtime=60.0)
        assert "shards" not in report
