"""Unit tests for the OASSIS-QL parser, AST and validator."""

import pytest

from repro.datasets import running_example
from repro.oassisql import (
    Multiplicity,
    SelectFormat,
    ValidationError,
    ensure_valid,
    format_query,
    parse_query,
    validate,
)
from repro.sparql import Concrete, ParseError, Var


class TestParseFigure2:
    def test_parses(self):
        query = parse_query(running_example.SAMPLE_QUERY)
        assert query.select_format is SelectFormat.FACT_SETS
        assert not query.select_all
        assert len(query.where) == 7
        assert len(query.satisfying.meta_facts) == 2
        assert query.satisfying.more
        assert query.threshold == 0.4

    def test_multiplicity_annotation(self):
        query = parse_query(running_example.SAMPLE_QUERY)
        assert query.satisfying.multiplicity_of(Var("y")) is Multiplicity.AT_LEAST_ONE
        assert query.satisfying.multiplicity_of(Var("x")) is Multiplicity.EXACTLY_ONE

    def test_where_and_satisfying_variables(self):
        query = parse_query(running_example.SAMPLE_QUERY)
        assert {v.name for v in query.where_variables()} == {"w", "x", "y", "z"}
        assert {v.name for v in query.satisfying_variables()} == {"x", "y", "z"}
        assert query.free_satisfying_variables() == ()


class TestSyntaxVariants:
    def test_select_variables(self):
        query = parse_query(
            "SELECT VARIABLES WHERE $x r A SATISFYING $x s B WITH SUPPORT = 0.3"
        )
        assert query.select_format is SelectFormat.VARIABLES

    def test_select_all(self):
        query = parse_query(
            "SELECT FACT-SETS ALL WHERE $x r A SATISFYING $x s B WITH SUPPORT = 0.3"
        )
        assert query.select_all

    def test_braced_bodies(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE { $x r A } SATISFYING { $x s B } WITH SUPPORT = 0.3"
        )
        assert len(query.where) == 1

    def test_empty_where_braced(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE { } SATISFYING $x+ [] [] WITH SUPPORT = 0.5"
        )
        assert query.where is None
        assert query.free_satisfying_variables()[0].name == "x"

    def test_empty_where_bare(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE SATISFYING $x+ [] [] WITH SUPPORT = 0.5"
        )
        assert query.where is None

    def test_support_operators(self):
        for op in ("=", ">=", ">"):
            query = parse_query(
                f"SELECT FACT-SETS WHERE $x r A SATISFYING $x s B WITH SUPPORT {op} 0.25"
            )
            assert query.threshold == 0.25

    def test_keywords_case_insensitive(self):
        query = parse_query(
            "select fact-sets where $x r A satisfying $x s B with support = 0.3"
        )
        assert query.threshold == 0.3

    def test_star_multiplicity(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE $x r A SATISFYING $x* s B WITH SUPPORT = 0.3"
        )
        assert query.satisfying.multiplicity_of(Var("x")) is Multiplicity.ANY

    def test_optional_multiplicity(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE $x r A SATISFYING $x? s B WITH SUPPORT = 0.3"
        )
        assert query.satisfying.multiplicity_of(Var("x")) is Multiplicity.OPTIONAL


class TestMultiplicityEnum:
    def test_admits(self):
        assert Multiplicity.EXACTLY_ONE.admits(1)
        assert not Multiplicity.EXACTLY_ONE.admits(0)
        assert not Multiplicity.EXACTLY_ONE.admits(2)
        assert Multiplicity.AT_LEAST_ONE.admits(3)
        assert not Multiplicity.AT_LEAST_ONE.admits(0)
        assert Multiplicity.ANY.admits(0)
        assert Multiplicity.OPTIONAL.admits(0)
        assert Multiplicity.OPTIONAL.admits(1)
        assert not Multiplicity.OPTIONAL.admits(2)


class TestParseErrors:
    def test_missing_satisfying(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FACT-SETS WHERE $x r A WITH SUPPORT = 0.3")

    def test_missing_threshold(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FACT-SETS WHERE $x r A SATISFYING $x s B")

    def test_bad_select_format(self):
        with pytest.raises(ParseError):
            parse_query("SELECT NONSENSE WHERE $x r A SATISFYING $x s B WITH SUPPORT = 0.3")

    def test_empty_satisfying(self):
        with pytest.raises(ParseError):
            parse_query("SELECT FACT-SETS WHERE $x r A SATISFYING WITH SUPPORT = 0.3")

    def test_threshold_out_of_range(self):
        with pytest.raises(ValueError):
            parse_query("SELECT FACT-SETS WHERE $x r A SATISFYING $x s B WITH SUPPORT = 1.5")

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            parse_query(
                "SELECT FACT-SETS WHERE $x r A SATISFYING $x s B WITH SUPPORT = 0.3 extra"
            )


class TestValidator:
    def test_valid_query_against_ontology(self):
        ontology = running_example.build_ontology()
        query = parse_query(running_example.SAMPLE_QUERY)
        assert validate(query, ontology) == []
        ensure_valid(query, ontology)

    def test_unknown_element_reported(self):
        ontology = running_example.build_ontology()
        query = parse_query(
            "SELECT FACT-SETS WHERE $x inside Paris SATISFYING $x doAt NYC WITH SUPPORT = 0.3"
        )
        problems = validate(query, ontology)
        assert any("Paris" in p for p in problems)
        with pytest.raises(ValidationError):
            ensure_valid(query, ontology)

    def test_unknown_relation_reported(self):
        ontology = running_example.build_ontology()
        query = parse_query(
            "SELECT FACT-SETS WHERE $x flysTo NYC SATISFYING $x doAt NYC WITH SUPPORT = 0.3"
        )
        assert any("flysTo" in p for p in validate(query, ontology))

    def test_haslabel_not_required_in_vocabulary(self):
        ontology = running_example.build_ontology()
        query = parse_query(
            'SELECT FACT-SETS WHERE $x hasLabel "child-friendly" '
            "SATISFYING $x doAt NYC WITH SUPPORT = 0.3"
        )
        assert validate(query, ontology) == []

    def test_variable_kind_conflict(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE $x $y A SATISFYING $y doAt $x WITH SUPPORT = 0.3"
        )
        problems = validate(query)
        assert any("both in element and relation position" in p for p in problems)


class TestPrettyPrinting:
    def test_round_trip(self):
        query = parse_query(running_example.SAMPLE_QUERY)
        text = format_query(query)
        reparsed = parse_query(text)
        assert len(reparsed.where) == len(query.where)
        assert reparsed.threshold == query.threshold
        assert reparsed.satisfying.more == query.satisfying.more

    def test_empty_where_renders(self):
        query = parse_query(
            "SELECT FACT-SETS WHERE { } SATISFYING $x+ [] [] WITH SUPPORT = 0.5"
        )
        assert "{ }" in format_query(query)
