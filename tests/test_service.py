"""Concurrency suite for repro.service: sessions, deadlines, departures.

The unit tests drive a :class:`SessionManager` with an injectable fake
clock, so timeout / backoff / reassignment paths are exercised without
sleeping.  The integration tests run the threaded simulation and assert
the service layer's correctness oracle: every session's MSP set equals a
serial ``engine.execute`` of the same query.
"""

import pytest

from repro import OassisEngine
from repro.analysis import lockcheck
from repro.crowd.questions import ConcreteQuestion
from repro.engine import AnswerOutcome
from repro.observability import derive_service, tracing
from repro.service import (
    MemberScript,
    ServiceConfig,
    ServiceRunner,
    SessionState,
    run_simulation,
)
from repro.service.simulation import DOMAINS, build_identical_crowd


#: the docs/SERVICE.md contract: these locks are never held together
_FORBIDDEN = [
    ("service.manager", "service.session"),
]


@pytest.fixture(autouse=True)
def lock_order_checker():
    """Run every service test under the dynamic lock-order checker.

    Locks created by SessionManager / QuerySession / CrowdCache while a
    checker is installed are tracked wrappers: any manager/session
    co-holding or acquisition-order cycle raises LockOrderError instead
    of deadlocking, so the suite machine-checks the locking contract.
    """
    checker = lockcheck.install(
        lockcheck.LockOrderChecker(forbid_together=_FORBIDDEN)
    )
    try:
        yield checker
    finally:
        lockcheck.uninstall()
    assert checker.violations == []


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(scope="module")
def demo():
    return DOMAINS["demo"]()


@pytest.fixture(scope="module")
def engine(demo):
    return OassisEngine(demo.ontology)


@pytest.fixture()
def clock():
    return FakeClock()


def make_manager(engine, clock, **options):
    options.setdefault("question_timeout", 10.0)
    options.setdefault("backoff_base", 1.0)
    return engine.session_manager(clock=clock, **options)


def answer_for(member, question):
    return member.answer_concrete(
        ConcreteQuestion(question.assignment, question.fact_set)
    ).support


def drive_serially(manager, members, max_rounds=10_000):
    """Single-threaded pump: every member answers until quiescence."""
    by_id = {m.member_id: m for m in members}
    for member in members:
        manager.attach_member(member.member_id)
    for _ in range(max_rounds):
        if manager.all_done():
            return
        progress = False
        for member_id in manager.members():
            for question in manager.next_batch(member_id, k=4):
                progress = True
                manager.submit(question, answer_for(by_id[member_id], question))
        if not progress and not manager.all_done():  # pragma: no cover
            pytest.fail("manager stalled with open sessions")
    pytest.fail("manager did not settle")  # pragma: no cover


class TestServiceConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            ServiceConfig(question_timeout=0)
        with pytest.raises(ValueError):
            ServiceConfig(max_attempts=0)
        with pytest.raises(ValueError):
            ServiceConfig(in_flight_limit=0)

    def test_override(self):
        config = ServiceConfig().override(max_attempts=7)
        assert config.max_attempts == 7


class TestDispatch:
    def test_batch_respects_in_flight_limit(self, engine, demo, clock):
        manager = make_manager(engine, clock, in_flight_limit=2)
        manager.create_session(demo.query(0.4), session_id="q")
        manager.attach_member("u0")
        # answer the lattice root so its successors open up the frontier
        [root] = manager.next_batch("u0", k=1)
        manager.submit(root, 1.0)
        batch = manager.next_batch("u0", k=10)
        assert len(batch) == 2
        # at the cap: nothing more until an answer or timeout frees a slot
        assert manager.next_batch("u0", k=10) == []
        manager.submit(batch[0], 1.0)
        assert len(manager.next_batch("u0", k=10)) == 1

    def test_unattached_member_rejected(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        manager.create_session(demo.query(0.4))
        with pytest.raises(KeyError):
            manager.next_batch("ghost")

    def test_round_robin_spans_sessions(self, engine, demo, clock):
        manager = make_manager(engine, clock, in_flight_limit=8)
        manager.create_session(demo.query(0.4), session_id="a")
        manager.create_session(demo.query(0.5), session_id="b")
        manager.attach_member("u0")
        batch = manager.next_batch("u0", k=4)
        assert {q.session_id for q in batch} == {"a", "b"}

    def test_serial_drive_matches_engine_execute(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        session = manager.create_session(demo.query(0.4), sample_size=2)
        members = build_identical_crowd(demo, 3)
        drive_serially(manager, members)
        assert session.state is SessionState.COMPLETED
        serial = engine.execute(
            demo.query(0.4), build_identical_crowd(demo, 3), sample_size=2
        )
        assert sorted(map(repr, session.msps())) == sorted(
            map(repr, serial.all_msps)
        )


class TestTimeoutsAndRetries:
    def test_timeout_requeues_with_backoff(self, engine, demo, clock):
        manager = make_manager(
            engine, clock, question_timeout=5.0, backoff_base=2.0, max_attempts=3
        )
        manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        [first] = manager.next_batch("u0", k=1)
        assert first.attempt == 1
        clock.advance(5.0)
        reaped = manager.reap_expired()
        assert [q.assignment for q in reaped] == [first.assignment]
        # inside the backoff window the node is deferred, not redelivered
        # (and it is the only frontier node, so the batch comes back empty)
        assert manager.next_batch("u0", k=4) == []
        clock.advance(2.0)
        batch = manager.next_batch("u0", k=4)
        retried = {q.assignment: q for q in batch}
        assert first.assignment in retried
        assert retried[first.assignment].attempt == 2

    def test_exhausted_retries_reassign(self, engine, demo, clock):
        manager = make_manager(
            engine, clock, question_timeout=5.0, max_attempts=1, backoff_base=0.0
        )
        manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        manager.attach_member("u1")
        [question] = manager.next_batch("u0", k=1)
        clock.advance(5.0)
        manager.reap_expired()
        # the node jumped to the top of the other member's queue ...
        [handed] = manager.next_batch("u1", k=1)
        assert handed.assignment == question.assignment
        # ... and is never handed to the original member again
        assigned_to_u0 = {q.assignment for q in manager.next_batch("u0", k=8)}
        assert question.assignment not in assigned_to_u0

    def test_late_answer_is_stale(self, engine, demo, clock):
        manager = make_manager(engine, clock, question_timeout=5.0)
        manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        [question] = manager.next_batch("u0", k=1)
        clock.advance(5.0)
        manager.reap_expired()
        assert manager.submit(question, 1.0) is AnswerOutcome.STALE

    def test_pass_abandons_node_for_member(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        [question] = manager.next_batch("u0", k=1)
        assert manager.submit(question, None) is AnswerOutcome.PASSED
        assigned = {q.assignment for q in manager.next_batch("u0", k=8)}
        assert question.assignment not in assigned


class TestDeadlineScaling:
    """PR 7 satellite: deadlines scale with the member's queue depth.

    A member answering a held batch serially cannot even look at its
    n-th question before finishing the n-1 ahead of it, so a fixed
    per-question clock reaps questions the member was never slow on.
    """

    def test_deadline_scales_with_in_flight_position(self, engine, demo, clock):
        manager = make_manager(
            engine, clock, question_timeout=5.0, backoff_base=0.0, batch_size=3
        )
        # one frontier node per session; three sessions let one member
        # hold a batch of three simultaneously
        for _ in range(3):
            manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        batch = manager.next_batch("u0", k=3)
        assert len(batch) == 3
        assert [q.deadline for q in batch] == [5.0, 10.0, 15.0]
        clock.advance(5.0)
        # only the head-of-queue question is overdue; the rest are still
        # inside their scaled windows
        assert [q.assignment for q in manager.reap_expired()] == [
            batch[0].assignment
        ]
        clock.advance(5.0)
        assert [q.assignment for q in manager.reap_expired()] == [
            batch[1].assignment
        ]

    def test_fixed_deadlines_when_disabled(self, engine, demo, clock):
        manager = make_manager(
            engine,
            clock,
            question_timeout=5.0,
            backoff_base=0.0,
            batch_size=3,
            scale_deadlines=False,
        )
        for _ in range(3):
            manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        batch = manager.next_batch("u0", k=3)
        assert [q.deadline for q in batch] == [5.0, 5.0, 5.0]
        clock.advance(5.0)
        assert len(manager.reap_expired()) == 3

    def test_position_counts_only_that_member(self, engine, demo, clock):
        manager = make_manager(engine, clock, question_timeout=5.0, batch_size=4)
        for _ in range(3):
            manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        manager.attach_member("u1")
        held = manager.next_batch("u0", k=2)
        assert [q.deadline for q in held] == [5.0, 10.0]
        # u1 holds nothing, so its first question gets a single window
        # regardless of u0's queue depth
        [first] = manager.next_batch("u1", k=1)
        assert first.deadline == 5.0


class TestDepartures:
    def test_departure_reassigns_in_flight(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        manager.attach_member("u1")
        [question] = manager.next_batch("u0", k=1)
        manager.detach_member("u0")
        assert manager.members() == ["u1"]
        with pytest.raises(KeyError):
            manager.next_batch("u0")
        [handed] = manager.next_batch("u1", k=1)
        assert handed.assignment == question.assignment

    def test_all_members_gone_completes_sessions(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        session = manager.create_session(demo.query(0.4))
        manager.attach_member("u0")
        manager.next_batch("u0", k=1)
        manager.detach_member("u0")
        assert manager.all_done()
        assert session.state is SessionState.COMPLETED


class TestLifecycle:
    def test_cancel_stops_dispatch(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        session = manager.create_session(demo.query(0.4), session_id="victim")
        manager.attach_member("u0")
        assert manager.cancel_session("victim")
        assert session.state is SessionState.CANCELLED
        assert manager.next_batch("u0", k=4) == []
        assert manager.all_done()
        assert not manager.cancel_session("victim")  # already settled

    def test_duplicate_session_id_rejected(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        manager.create_session(demo.query(0.4), session_id="dup")
        with pytest.raises(ValueError):
            manager.create_session(demo.query(0.4), session_id="dup")

    def test_snapshot_resume_answers_for_free(self, engine, demo, clock):
        manager = make_manager(engine, clock)
        first = manager.create_session(demo.query(0.4), sample_size=2)
        members = build_identical_crowd(demo, 3)
        drive_serially(manager, members)
        snapshot = manager.snapshot(first.session_id)
        resumed = manager.create_session(
            demo.query(0.4),
            session_id="resumed",
            cache=snapshot,
            resume=True,
            sample_size=2,
        )
        assert resumed.resumed_answers == snapshot.total_answers()
        # the same crowd continues from the cached frontier: the session
        # settles with identical MSPs and zero new questions asked
        assert manager.all_done()
        assert resumed.state is SessionState.COMPLETED
        assert resumed.questions_asked() == 0
        assert sorted(map(repr, resumed.msps())) == sorted(
            map(repr, first.msps())
        )


class TestConcurrentService:
    def test_eight_sessions_four_workers_match_serial(self):
        report = run_simulation(
            domain="demo",
            sessions=8,
            workers=4,
            crowd_size=6,
            sample_size=3,
            drop_every=5,
            departures=1,
            question_timeout=0.2,
            max_runtime=120.0,
            verify=True,
        )
        assert not report["timed_out"], "worker pool failed to settle"
        states = {info["state"] for info in report["sessions"].values()}
        assert states == {"completed"}
        assert report["verified"], report["mismatches"]

    def test_runner_emits_service_counters(self, engine, demo):
        manager = engine.session_manager(question_timeout=0.2, backoff_base=0.01)
        manager.create_session(demo.query(0.4), sample_size=2)
        scripts = [
            MemberScript(member, drop_every=4 if index == 0 else 0)
            for index, member in enumerate(build_identical_crowd(demo, 3))
        ]
        with tracing() as tracer:
            report = ServiceRunner(
                manager, scripts, workers=2, max_runtime=60.0
            ).run()
        assert not report["timed_out"]
        service = derive_service(tracer.report()["counters"])
        assert service is not None
        assert service["sessions"]["completed"] == 1
        assert service["questions"]["dispatched"] > 0
        assert service["questions"]["timeouts"] > 0  # the dropper forced reaps
