"""Randomized equivalence: bitset-compiled paths vs. reference scans.

The bitset compilation of :mod:`repro.vocabulary.orders` and the TID-bitset
support counting of :mod:`repro.crowd.tid_index` must be *observationally
identical* to the retained reference implementations — same ``leq``, same
closures, same support values — on random :mod:`repro.synth` taxonomies,
including after mutations (``add_edge`` / transaction ``add``) that must
invalidate the compiled state.
"""

import random

import pytest

from repro.crowd.personal_db import PersonalDatabase, Transaction
from repro.ontology.facts import Fact, FactSet
from repro.synth.taxonomy import random_order, random_taxonomy, random_vocabulary
from repro.vocabulary.terms import ANY_ELEMENT, ANY_RELATION_WILDCARD
from repro.vocabulary.vocabulary import Vocabulary


def _sample_terms(rng, order, count):
    terms = sorted(order.terms())
    return [rng.choice(terms) for _ in range(count)]


class TestOrderEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_leq_matches_reference(self, seed):
        order = random_order(node_count=150, depth=5, seed=seed)
        rng = random.Random(seed)
        for a, b in zip(
            _sample_terms(rng, order, 300), _sample_terms(rng, order, 300)
        ):
            assert order.leq(a, b) == order.leq_reference(a, b), (a, b)

    @pytest.mark.parametrize("seed", range(5))
    def test_closures_match_reference(self, seed):
        order = random_order(node_count=120, depth=4, seed=seed)
        for term in order.terms():
            assert order.descendants(term) == order.descendants_reference(term)
            assert order.ancestors(term) == order.ancestors_reference(term)

    def test_bits_and_views_agree(self):
        order = random_order(node_count=100, depth=4, seed=7)
        for term in order.terms():
            assert order.terms_of_bits(order.descendants_bits(term)) == (
                order.descendants(term)
            )
            assert order.terms_of_bits(order.ancestors_bits(term)) == (
                order.ancestors(term)
            )

    def test_mutation_invalidates_compiled_closures(self):
        order = random_order(node_count=80, depth=4, seed=3)
        rng = random.Random(3)
        for round_no in range(10):
            a, b = _sample_terms(rng, order, 2)
            if order.leq(b, a) or a == b:
                continue  # would cycle
            before = order.version
            order.add_edge(a, b)
            assert order.version > before
            assert order.leq(a, b)
            # spot-check full agreement after the mutation
            for term in _sample_terms(rng, order, 20):
                assert order.descendants(term) == order.descendants_reference(term)
                assert order.ancestors(term) == order.ancestors_reference(term)

    def test_unregistered_terms_relate_only_to_themselves(self):
        order = random_order(node_count=30, depth=3, seed=1)
        from repro.vocabulary.terms import Element

        ghost = Element("NotInOrder")
        some = next(iter(order.terms()))
        assert order.leq(ghost, ghost)
        assert not order.leq(ghost, some)
        assert not order.leq(some, ghost)
        assert order.descendants(ghost) == {ghost}
        assert order.descendants_bits(ghost) == 0


def _random_database(rng, vocabulary, transactions=30, facts_per_tx=4):
    elements = sorted(vocabulary.elements, key=lambda e: e.name)
    relations = sorted(vocabulary.relations, key=lambda r: r.name)
    fact_sets = []
    for _ in range(transactions):
        facts = []
        for _ in range(rng.randint(1, facts_per_tx)):
            facts.append(
                Fact(rng.choice(elements), rng.choice(relations), rng.choice(elements))
            )
        fact_sets.append(FactSet(facts))
    return PersonalDatabase.from_fact_sets(fact_sets)


def _random_queries(rng, vocabulary, count=40, max_facts=3):
    elements = sorted(vocabulary.elements, key=lambda e: e.name)
    relations = sorted(vocabulary.relations, key=lambda r: r.name)
    queries = []
    for _ in range(count):
        facts = []
        for _ in range(rng.randint(1, max_facts)):
            subject = rng.choice(elements + [ANY_ELEMENT])
            relation = rng.choice(relations + [ANY_RELATION_WILDCARD])
            obj = rng.choice(elements + [ANY_ELEMENT])
            facts.append(Fact(subject, relation, obj))
        queries.append(FactSet(facts))
    queries.append(FactSet())  # empty fact-set: support 1 by definition
    return queries


class TestSupportEquivalence:
    @pytest.mark.parametrize("seed", range(4))
    def test_tid_support_matches_reference(self, seed):
        rng = random.Random(seed)
        vocabulary = random_vocabulary(
            element_count=120, relation_count=6, depth=4, seed=seed
        )
        db = _random_database(rng, vocabulary)
        for query in _random_queries(rng, vocabulary):
            assert db.support(query, vocabulary) == db.support_reference(
                query, vocabulary
            ), query

    def test_transaction_add_invalidates_index(self):
        rng = random.Random(11)
        vocabulary = random_vocabulary(
            element_count=60, relation_count=4, depth=3, seed=11
        )
        db = _random_database(rng, vocabulary, transactions=10)
        queries = _random_queries(rng, vocabulary, count=15)
        for query in queries:
            db.support(query, vocabulary)  # warm index + memo
        elements = sorted(vocabulary.elements, key=lambda e: e.name)
        relations = sorted(vocabulary.relations, key=lambda r: r.name)
        new_tx = Transaction(
            "Tnew",
            FactSet(
                [Fact(rng.choice(elements), rng.choice(relations), rng.choice(elements))]
            ),
        )
        db.add(new_tx)
        for query in queries:
            assert db.support(query, vocabulary) == db.support_reference(
                query, vocabulary
            )

    def test_taxonomy_growth_invalidates_index(self):
        rng = random.Random(13)
        vocabulary = random_vocabulary(
            element_count=50, relation_count=4, depth=3, seed=13
        )
        db = _random_database(rng, vocabulary, transactions=12)
        queries = _random_queries(rng, vocabulary, count=15)
        for query in queries:
            db.support(query, vocabulary)  # warm index + memo
        # graft a new subtree under an existing term: closures change
        anchor = sorted(vocabulary.elements, key=lambda e: e.name)[0]
        layers = random_taxonomy(
            vocabulary, node_count=8, depth=1, seed=99, prefix="Graft"
        )
        vocabulary.element_order.add_edge(anchor, layers[0][0])
        for query in queries:
            assert db.support(query, vocabulary) == db.support_reference(
                query, vocabulary
            )

    def test_supporting_transactions_match_reference(self):
        rng = random.Random(17)
        vocabulary = random_vocabulary(
            element_count=80, relation_count=5, depth=4, seed=17
        )
        db = _random_database(rng, vocabulary, transactions=20)
        for query in _random_queries(rng, vocabulary, count=20):
            via_index = db.supporting_transactions(query, vocabulary)
            via_scan = [t for t in db if t.implies(query, vocabulary)]
            assert [t.transaction_id for t in via_index] == [
                t.transaction_id for t in via_scan
            ]

    def test_paper_scale_smoke(self):
        """One pass at a ≥4000-node DAG: compile, query, agree."""
        rng = random.Random(23)
        vocabulary = random_vocabulary(element_count=4200, depth=6, seed=23)
        assert len(vocabulary.element_order) >= 4000
        db = _random_database(rng, vocabulary, transactions=25)
        for query in _random_queries(rng, vocabulary, count=10, max_facts=2):
            assert db.support(query, vocabulary) == db.support_reference(
                query, vocabulary
            )
