"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.datasets import running_example
from repro.ontology import turtle


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "query.oql"
    path.write_text(running_example.FRAGMENT_QUERY)
    return str(path)


@pytest.fixture()
def ontology_file(tmp_path):
    ontology = running_example.build_ontology()
    path = tmp_path / "onto.ttl"
    turtle.dump(ontology, path)
    return str(path)


class TestParseCommand:
    def test_parse_pretty_prints(self, query_file, capsys):
        assert main(["parse", query_file]) == 0
        out = capsys.readouterr().out
        assert "SELECT FACT-SETS" in out
        assert "WITH SUPPORT" in out

    def test_parse_with_ontology_ok(self, query_file, ontology_file, capsys):
        assert main(["parse", query_file, "--ontology", ontology_file]) == 0

    def test_parse_reports_problems(self, tmp_path, ontology_file, capsys):
        bad = tmp_path / "bad.oql"
        bad.write_text(
            "SELECT FACT-SETS WHERE $x inside Paris "
            "SATISFYING $x doAt NYC WITH SUPPORT = 0.3"
        )
        assert main(["parse", str(bad), "--ontology", ontology_file]) == 1
        assert "Paris" in capsys.readouterr().err


class TestDomainsCommand:
    def test_lists_domains(self, capsys):
        assert main(["domains"]) == 0
        out = capsys.readouterr().out
        assert "travel" in out
        assert "culinary" in out
        assert "self-treatment" in out


class TestRunCommand:
    def test_run_requires_target(self, capsys):
        assert main(["run"]) == 2

    def test_run_domain(self, capsys):
        code = main(
            ["run", "--domain", "self-treatment", "--crowd-size", "10",
             "--threshold", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "question(s) asked" in out

    def test_run_custom_single_user(self, tmp_path, ontology_file, capsys):
        query = tmp_path / "q.oql"
        query.write_text(running_example.FRAGMENT_QUERY)
        history = tmp_path / "history.txt"
        history.write_text(
            "# my outings\n"
            "Biking doAt Central Park\n"
            "Biking doAt Central Park. Basketball doAt Central Park\n"
            "Basketball doAt Central Park\n"
        )
        code = main(
            ["run", "--ontology", ontology_file, "--query", str(query),
             "--history", str(history)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Biking doAt Central Park" in out

    def test_run_custom_without_history_fails(self, tmp_path, ontology_file, capsys):
        query = tmp_path / "q.oql"
        query.write_text(running_example.FRAGMENT_QUERY)
        assert main(
            ["run", "--ontology", ontology_file, "--query", str(query)]
        ) == 2
