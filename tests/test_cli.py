"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datasets import running_example
from repro.ontology import turtle


@pytest.fixture()
def query_file(tmp_path):
    path = tmp_path / "query.oql"
    path.write_text(running_example.FRAGMENT_QUERY)
    return str(path)


@pytest.fixture()
def ontology_file(tmp_path):
    ontology = running_example.build_ontology()
    path = tmp_path / "onto.ttl"
    turtle.dump(ontology, path)
    return str(path)


class TestParseCommand:
    def test_parse_pretty_prints(self, query_file, capsys):
        assert main(["parse", query_file]) == 0
        out = capsys.readouterr().out
        assert "SELECT FACT-SETS" in out
        assert "WITH SUPPORT" in out

    def test_parse_with_ontology_ok(self, query_file, ontology_file, capsys):
        assert main(["parse", query_file, "--ontology", ontology_file]) == 0

    def test_parse_reports_problems(self, tmp_path, ontology_file, capsys):
        bad = tmp_path / "bad.oql"
        bad.write_text(
            "SELECT FACT-SETS WHERE $x inside Paris "
            "SATISFYING $x doAt NYC WITH SUPPORT = 0.3"
        )
        assert main(["parse", str(bad), "--ontology", ontology_file]) == 1
        assert "Paris" in capsys.readouterr().err


class TestDomainsCommand:
    def test_lists_domains(self, capsys):
        assert main(["domains"]) == 0
        out = capsys.readouterr().out
        assert "travel" in out
        assert "culinary" in out
        assert "self-treatment" in out


class TestRunCommand:
    def test_run_requires_target(self, capsys):
        assert main(["run"]) == 2

    def test_run_domain(self, capsys):
        code = main(
            ["run", "--domain", "self-treatment", "--crowd-size", "10",
             "--threshold", "0.3"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "question(s) asked" in out

    def test_run_custom_single_user(self, tmp_path, ontology_file, capsys):
        query = tmp_path / "q.oql"
        query.write_text(running_example.FRAGMENT_QUERY)
        history = tmp_path / "history.txt"
        history.write_text(
            "# my outings\n"
            "Biking doAt Central Park\n"
            "Biking doAt Central Park. Basketball doAt Central Park\n"
            "Basketball doAt Central Park\n"
        )
        code = main(
            ["run", "--ontology", ontology_file, "--query", str(query),
             "--history", str(history)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Biking doAt Central Park" in out

    def test_run_custom_without_history_fails(self, tmp_path, ontology_file, capsys):
        query = tmp_path / "q.oql"
        query.write_text(running_example.FRAGMENT_QUERY)
        assert main(
            ["run", "--ontology", ontology_file, "--query", str(query)]
        ) == 2


class TestServeSimCommand:
    ARGS = [
        "serve-sim", "--sessions", "2", "--workers", "2",
        "--crowd-size", "3", "--drop-every", "0", "--departures", "0",
    ]

    def test_serve_sim_text_report(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "2 session(s), 2 worker(s)" in out
        assert "serial MSP check: identical" in out

    def test_serve_sim_json_report(self, capsys):
        assert main(self.ARGS + ["--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["verified"] is True
        assert report["timed_out"] is False
        assert len(report["sessions"]) == 2

    def test_serve_sim_no_verify_skips_oracle(self, capsys):
        assert main(self.ARGS + ["--no-verify", "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert "verified" not in report

    def test_serve_sim_unknown_domain_errors(self, capsys):
        with pytest.raises(ValueError, match="unknown domain"):
            main(self.ARGS + ["--domain", "bogus"])


class TestLintCommand:
    def test_lint_clean_file_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "clean.py"
        target.write_text("x = 1\n")
        assert main(["lint", str(target)]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_dirty_file_exits_one(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import json\n")
        assert main(["lint", str(target)]) == 1
        out = capsys.readouterr().out
        assert "unused-import" in out

    def test_lint_json_output(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import json\n")
        assert main(["lint", str(target), "--json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["errors"] == 1
        assert report["findings"][0]["rule"] == "unused-import"

    def test_lint_suppression_honored(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import json  # repro-lint: disable=unused-import\n")
        assert main(["lint", str(target)]) == 0
        assert "1 suppressed" in capsys.readouterr().out

    def test_lint_rule_selection(self, tmp_path, capsys):
        target = tmp_path / "dirty.py"
        target.write_text("import json\n")
        assert main(["lint", str(target), "--rules", "bare-except"]) == 0

    def test_lint_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "lock-nesting" in out
        assert "version-stamp" in out

    def test_lint_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent")]) == 2
