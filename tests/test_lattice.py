"""Unit tests for the explicit assignment-space DAG."""

import pytest

from repro.assignments import ExplicitDAG


@pytest.fixture()
def diamond() -> ExplicitDAG:
    dag = ExplicitDAG()
    for parent, child in [(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)]:
        dag.add_edge(parent, child)
    dag.set_valid({2, 3, 4})
    return dag


class TestStructure:
    def test_roots(self, diamond):
        assert diamond.roots() == [0]

    def test_successors_predecessors(self, diamond):
        assert set(diamond.successors(0)) == {1, 2}
        assert set(diamond.predecessors(3)) == {1, 2}

    def test_self_loop_rejected(self):
        dag = ExplicitDAG()
        with pytest.raises(ValueError):
            dag.add_edge(1, 1)

    def test_len_and_contains(self, diamond):
        assert len(diamond) == 5
        assert 3 in diamond
        assert 99 not in diamond

    def test_valid_nodes(self, diamond):
        assert sorted(diamond.valid_nodes()) == [2, 3, 4]
        assert diamond.is_valid(3)
        assert not diamond.is_valid(0)

    def test_default_all_valid(self):
        dag = ExplicitDAG(edges=[(0, 1)])
        assert dag.is_valid(0) and dag.is_valid(1)


class TestOrder:
    def test_leq_reflexive(self, diamond):
        assert diamond.leq(3, 3)

    def test_leq_reachability(self, diamond):
        assert diamond.leq(0, 4)
        assert not diamond.leq(4, 0)
        assert not diamond.leq(1, 2)

    def test_descendants_ancestors(self, diamond):
        assert diamond.descendants(1) == {1, 3, 4}
        assert diamond.ancestors(3) == {0, 1, 2, 3}

    def test_descendants_cache_invalidated(self, diamond):
        assert diamond.descendants(4) == {4}
        diamond.add_edge(4, 5)
        assert diamond.descendants(4) == {4, 5}


class TestShapeMetrics:
    def test_depth(self, diamond):
        assert diamond.depth(0) == 0
        assert diamond.depth(3) == 2
        assert diamond.depth(4) == 3

    def test_height(self, diamond):
        assert diamond.height() == 3

    def test_width(self, diamond):
        assert diamond.width() == 2  # level 1 holds nodes 1 and 2


class TestTraversal:
    def test_descend_iter_visits_everything_once(self, diamond):
        visited = list(diamond.descend_iter())
        assert sorted(visited) == [0, 1, 2, 3, 4]
        assert len(visited) == len(set(visited))

    def test_descend_iter_is_top_down(self, diamond):
        visited = list(diamond.descend_iter())
        assert visited.index(0) < visited.index(3) < visited.index(4)

    def test_all_nodes_bounded(self, diamond):
        assert len(diamond.all_nodes(max_nodes=2)) <= 3


class TestCopy:
    def test_copy_independent(self, diamond):
        dup = diamond.copy()
        dup.add_edge(4, 10)
        assert 10 not in diamond
        assert dup.is_valid(3)
