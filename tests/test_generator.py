"""Unit tests for the lazy query-driven assignment space (Section 5)."""

import pytest

from repro.assignments import Assignment, QueryAssignmentSpace
from repro.datasets import running_example
from repro.oassisql import parse_query
from repro.ontology import Fact
from repro.vocabulary import Element
from repro.vocabulary.terms import ANY_ELEMENT


def E(name: str) -> Element:
    return Element(name)


@pytest.fixture(scope="module")
def space() -> QueryAssignmentSpace:
    ontology = running_example.build_ontology()
    query = parse_query(running_example.SAMPLE_QUERY)
    return QueryAssignmentSpace(
        ontology,
        query,
        more_pool=running_example.more_pool(),
        max_values_per_var=2,
        max_more_facts=1,
    )


@pytest.fixture(scope="module")
def fragment_space() -> QueryAssignmentSpace:
    """The Figure 3 fragment: activities at attractions only."""
    ontology = running_example.build_ontology()
    query = parse_query(running_example.FRAGMENT_QUERY)
    return QueryAssignmentSpace(ontology, query, max_values_per_var=2)


class TestValidBase:
    def test_base_assignment_count(self, space):
        # 2 attractions x 7 activity generalizations (Activity, Sport,
        # Ball Game, Basketball, Baseball, Biking, Water Sport, Swimming,
        # Water Polo, Feed a monkey) = 2 x 10 ... restricted to the
        # subClassOf* Activity closure present in Figure 1
        base = space.valid_base_assignments()
        xs = {next(iter(a.get("x"))) for a in base}
        assert xs == {E("Central Park"), E("Bronx Zoo")}
        # every base assignment pairs the right restaurant
        for assignment in base:
            x = next(iter(assignment.get("x")))
            z = next(iter(assignment.get("z")))
            expected = E("Maoz Veg") if x == E("Central Park") else E("Pine")
            assert z == expected

    def test_base_assignments_are_valid(self, space):
        for assignment in space.valid_base_assignments():
            assert space.is_valid(assignment)

    def test_base_assignments_in_expansion(self, space):
        for assignment in space.valid_base_assignments():
            assert space.in_expansion(assignment)


class TestRoots:
    def test_single_root_matches_figure3_node1(self, fragment_space):
        roots = fragment_space.roots()
        assert len(roots) == 1
        root = roots[0]
        assert root.get("x") == {E("Attraction")}
        assert root.get("y") == {E("Activity")}

    def test_full_query_root_includes_restaurant_cap(self, space):
        (root,) = space.roots()
        assert root.get("z") == {E("Restaurant")}
        assert root.get("x") == {E("Attraction")}


class TestSuccessors:
    def test_specialization_steps(self, fragment_space):
        (root,) = fragment_space.roots()
        successors = fragment_space.successors(root)
        xs = {frozenset(s.get("x")) for s in successors}
        assert frozenset({E("Outdoor")}) in xs  # Attraction -> Outdoor
        ys = {frozenset(s.get("y")) for s in successors}
        assert frozenset({E("Sport")}) in ys
        assert frozenset({E("Feed a monkey")}) in ys

    def test_successors_strictly_more_specific(self, fragment_space):
        (root,) = fragment_space.roots()
        for successor in fragment_space.successors(root):
            assert root.strictly_leq(successor, fragment_space.vocabulary)

    def test_indoor_not_generated(self, fragment_space):
        # Indoor has no valid instance below it (no child-friendly indoor
        # attraction inside NYC), so it is outside the expansion set A
        (root,) = fragment_space.roots()
        successors = fragment_space.successors(root)
        xs = {frozenset(s.get("x")) for s in successors}
        assert frozenset({E("Indoor")}) not in xs

    def test_multiplicity_addition(self, fragment_space):
        vocab = fragment_space.vocabulary
        node = Assignment.make(
            vocab, {"x": {E("Central Park")}, "y": {E("Biking")}}
        )
        successors = fragment_space.successors(node)
        added = [s for s in successors if len(s.get("y")) == 2]
        assert added, "expected lazy combination successors for $y+"
        for successor in added:
            assert E("Biking") in successor.get("y")

    def test_x_never_gets_two_values(self, space):
        # $x has multiplicity exactly-one
        (root,) = space.roots()
        frontier = [root]
        seen = set(frontier)
        for _ in range(200):
            if not frontier:
                break
            node = frontier.pop()
            for successor in space.successors(node):
                assert len(successor.get("x")) <= 1
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)

    def test_more_fact_successor(self, space):
        (root,) = space.roots()
        with_more = [s for s in space.successors(root) if s.more]
        assert len(with_more) == 1
        assert Fact("Rent Bikes", "doAt", "Boathouse") in with_more[0].more

    def test_more_fact_capped(self, space):
        (root,) = space.roots()
        with_more = [s for s in space.successors(root) if s.more][0]
        assert not any(len(s.more) > 1 for s in space.successors(with_more))


class TestPredecessors:
    def test_predecessors_inverse_of_specialization(self, fragment_space):
        vocab = fragment_space.vocabulary
        node = Assignment.make(vocab, {"x": {E("Central Park")}, "y": {E("Biking")}})
        predecessors = fragment_space.predecessors(node)
        expected = Assignment.make(vocab, {"x": {E("Park")}, "y": {E("Biking")}})
        assert expected in predecessors

    def test_predecessors_strictly_more_general(self, fragment_space):
        vocab = fragment_space.vocabulary
        node = Assignment.make(vocab, {"x": {E("Central Park")}, "y": {E("Biking")}})
        for predecessor in fragment_space.predecessors(node):
            assert predecessor.strictly_leq(node, vocab)

    def test_dropping_a_value_is_a_predecessor(self, fragment_space):
        vocab = fragment_space.vocabulary
        node = Assignment.make(
            vocab, {"x": {E("Central Park")}, "y": {E("Biking"), E("Ball Game")}}
        )
        predecessors = fragment_space.predecessors(node)
        smaller = Assignment.make(
            vocab, {"x": {E("Central Park")}, "y": {E("Biking")}}
        )
        assert smaller in predecessors


class TestValidity:
    def test_class_level_assignment_invalid_for_instance_query(self, space):
        vocab = space.vocabulary
        class_level = Assignment.make(
            vocab,
            {"x": {E("Park")}, "y": {E("Biking")}, "z": {E("Maoz Veg")},
             "__any_0": {ANY_ELEMENT}},
        )
        assert not space.is_valid(class_level)

    def test_wrong_restaurant_pairing_invalid(self, space):
        vocab = space.vocabulary
        crossed = Assignment.make(
            vocab,
            {"x": {E("Central Park")}, "y": {E("Biking")}, "z": {E("Pine")},
             "__any_0": {ANY_ELEMENT}},
        )
        assert not space.is_valid(crossed)

    def test_wrong_pairing_not_in_expansion(self, space):
        vocab = space.vocabulary
        crossed = Assignment.make(
            vocab,
            {"x": {E("Central Park")}, "y": {E("Biking")}, "z": {E("Pine")},
             "__any_0": {ANY_ELEMENT}},
        )
        assert not space.in_expansion(crossed)

    def test_multi_value_validity(self, fragment_space):
        vocab = fragment_space.vocabulary
        two_sports = Assignment.make(
            vocab, {"x": {E("Central Park")}, "y": {E("Biking"), E("Basketball")}}
        )
        assert fragment_space.is_valid(two_sports)

    def test_missing_mandatory_variable_invalid(self, fragment_space):
        vocab = fragment_space.vocabulary
        no_y = Assignment.make(vocab, {"x": {E("Central Park")}})
        assert not fragment_space.is_valid(no_y)

    def test_more_fact_keeps_validity(self, space):
        vocab = space.vocabulary
        base = Assignment.make(
            vocab,
            {"x": {E("Central Park")}, "y": {E("Biking")}, "z": {E("Maoz Veg")},
             "__any_0": {ANY_ELEMENT}},
            more=[Fact("Rent Bikes", "doAt", "Boathouse")],
        )
        assert space.is_valid(base)


class TestExpansionMembership:
    def test_generalizations_of_valid_in_expansion(self, fragment_space):
        vocab = fragment_space.vocabulary
        general = Assignment.make(vocab, {"x": {E("Outdoor")}, "y": {E("Sport")}})
        assert fragment_space.in_expansion(general)

    def test_multi_value_expansion_membership(self, fragment_space):
        vocab = fragment_space.vocabulary
        # {Sport, Feed a monkey} at Outdoor: witnessed by Central Park's
        # sports and Bronx Zoo's monkey feeding?  No - a combination must
        # fix x to a single tuple value, and no single attraction has both
        # only if... both activities are WHERE-valid at every attraction
        # (the WHERE clause does not link y to x), so this IS in A.
        node = Assignment.make(
            vocab, {"x": {E("Outdoor")}, "y": {E("Sport"), E("Feed a monkey")}}
        )
        assert fragment_space.in_expansion(node)

    def test_whole_space_is_finite_and_enumerable(self, fragment_space):
        nodes = fragment_space.all_nodes()
        assert 20 < len(nodes) < 2000
        # every enumerated node is in the expansion by construction
        for node in nodes[:50]:
            assert fragment_space.in_expansion(node)


class TestUniverses:
    def test_x_universe_capped_at_attraction(self, fragment_space):
        universe = fragment_space.universe("x")
        assert E("Attraction") in universe
        assert E("Place") not in universe
        assert E("Thing") not in universe

    def test_top_values(self, fragment_space):
        assert fragment_space.top_values("x") == {E("Attraction")}
        assert fragment_space.top_values("y") == {E("Activity")}


class TestDigestLeq:
    """space.leq must equal the semantic Assignment.leq on real lattices."""

    def test_matches_semantic_leq_on_traversed_nodes(self, fragment_space):
        vocabulary = fragment_space.vocabulary
        nodes = list(fragment_space.descend_iter(max_nodes=60))
        assert len(nodes) >= 10
        for a in nodes:
            for b in nodes:
                assert fragment_space.leq(a, b) == a.leq(b, vocabulary), (
                    f"digest leq diverged on {a!r} vs {b!r}"
                )

    def test_digests_invalidate_on_order_mutation(self, fragment_space):
        nodes = list(fragment_space.descend_iter(max_nodes=10))
        a, b = nodes[0], nodes[-1]
        before = fragment_space.leq(a, b)
        # bump the element-order version with an unrelated term; the digest
        # caches must rebuild rather than serve stale bitsets
        vocabulary = fragment_space.vocabulary
        vocabulary.element_order.add_term(E("Totally Unrelated"))
        assert fragment_space.leq(a, b) == before == a.leq(b, vocabulary)


class TestOrderedSuccessors:
    def test_same_set_as_successors(self, fragment_space):
        for node in fragment_space.descend_iter(max_nodes=30):
            assert set(fragment_space.ordered_successors(node)) == set(
                fragment_space.successors(node)
            )

    def test_order_is_deterministic(self):
        """Two independently built spaces order successors identically —
        the chain-partition sort keys are hash-seed independent."""
        def build():
            ontology = running_example.build_ontology()
            query = parse_query(running_example.FRAGMENT_QUERY)
            return QueryAssignmentSpace(ontology, query, max_values_per_var=2)

        first, second = build(), build()
        first_nodes = list(first.descend_iter(max_nodes=40))
        second_nodes = list(second.descend_iter(max_nodes=40))
        assert first_nodes == second_nodes
        for node in first_nodes:
            assert [repr(s) for s in first.ordered_successors(node)] == [
                repr(s) for s in second.ordered_successors(node)
            ]
