"""Tests for the multi-user algorithm (Section 4.2)."""

import random

import pytest

from repro.assignments import ExplicitDAG
from repro.crowd import CrowdCache, FixedSampleAggregator
from repro.mining import (
    FunctionUser,
    MultiUserMiner,
    ReplayUser,
    brute_force_msps,
)


@pytest.fixture()
def dag() -> ExplicitDAG:
    dag = ExplicitDAG()
    edges = [
        (0, 1), (0, 2), (1, 3), (1, 4), (2, 4), (2, 5),
        (3, 6), (4, 6), (4, 7), (5, 7),
    ]
    for a, b in edges:
        dag.add_edge(a, b)
    return dag


SIGNIFICANT = {0, 1, 2, 3, 4}


def unanimous_users(count=5):
    return [
        FunctionUser(f"u{i}", lambda n: 1.0 if n in SIGNIFICANT else 0.0)
        for i in range(count)
    ]


class TestConsensus:
    def test_unanimous_crowd_recovers_msps(self, dag):
        aggregator = FixedSampleAggregator(0.5, sample_size=5)
        miner = MultiUserMiner(dag, unanimous_users(5), aggregator)
        result = miner.run()
        assert set(result.msps) == set(
            brute_force_msps(dag, lambda n: n in SIGNIFICANT)
        )

    def test_verdict_needs_sample_size_answers(self, dag):
        aggregator = FixedSampleAggregator(0.5, sample_size=5)
        # only 3 users: no verdict can ever be reached
        miner = MultiUserMiner(dag, unanimous_users(3), aggregator)
        result = miner.run()
        assert result.msps == []
        # each user answered their full traversal once
        assert result.questions > 0

    def test_majority_against_outlier(self, dag):
        # the outlier answers 0 at the root and (per Section 4.2, change 4)
        # is never routed to successors, so five cooperative users are still
        # needed to reach the verdict quota below the root
        aggregator = FixedSampleAggregator(0.5, sample_size=5)
        users = unanimous_users(5) + [FunctionUser("odd", lambda n: 0.0)]
        result = MultiUserMiner(dag, users, aggregator).run()
        assert set(result.msps) == set(
            brute_force_msps(dag, lambda n: n in SIGNIFICANT)
        )

    def test_questions_counted_across_users(self, dag):
        aggregator = FixedSampleAggregator(0.5, sample_size=2)
        users = unanimous_users(2)
        result = MultiUserMiner(dag, users, aggregator).run()
        per_user_total = sum(result.questions_per_user.values())
        assert per_user_total == result.questions

    def test_users_not_asked_about_decided_nodes(self, dag):
        # with sample_size=2 and 6 users, late users skip decided nodes:
        # total answers per node never exceed sample size by much
        aggregator = FixedSampleAggregator(0.5, sample_size=2)
        users = unanimous_users(6)
        result = MultiUserMiner(dag, users, aggregator).run()
        for node in dag.nodes():
            assert aggregator.answer_count(node) <= 3

    def test_max_total_questions(self, dag):
        aggregator = FixedSampleAggregator(0.5, sample_size=5)
        result = MultiUserMiner(
            dag, unanimous_users(5), aggregator, max_total_questions=7
        ).run()
        assert result.questions <= 7

    def test_unwilling_users_stop(self, dag):
        aggregator = FixedSampleAggregator(0.5, sample_size=5)
        users = [
            FunctionUser(f"u{i}", lambda n: 1.0, max_questions=2) for i in range(3)
        ]
        result = MultiUserMiner(dag, users, aggregator).run()
        assert all(q <= 2 for q in result.questions_per_user.values())


class TestCacheAndReplay:
    def test_answers_recorded_in_cache(self, dag):
        cache = CrowdCache()
        aggregator = FixedSampleAggregator(0.5, sample_size=3)
        MultiUserMiner(dag, unanimous_users(3), aggregator, cache=cache).run()
        assert cache.total_answers() > 0

    def test_replay_reproduces_result(self, dag):
        cache = CrowdCache()
        aggregator = FixedSampleAggregator(0.5, sample_size=3)
        users = unanimous_users(3)
        original = MultiUserMiner(dag, users, aggregator, cache=cache).run()

        replay_users = [ReplayUser(f"u{i}", cache) for i in range(3)]
        replay_aggregator = FixedSampleAggregator(0.5, sample_size=3)
        replayed = MultiUserMiner(dag, replay_users, replay_aggregator).run()
        assert set(replayed.msps) == set(original.msps)

    def test_replay_at_higher_threshold_uses_fewer_answers(self, dag):
        # supports: significant nodes get graded values so that raising the
        # threshold shrinks the significant region
        supports = {0: 0.9, 1: 0.7, 2: 0.7, 3: 0.45, 4: 0.45}

        def fn(node):
            return supports.get(node, 0.0)

        cache = CrowdCache()
        users = [FunctionUser(f"u{i}", fn) for i in range(3)]
        low = MultiUserMiner(
            dag, users, FixedSampleAggregator(0.4, sample_size=3), cache=cache
        ).run()

        replay_users = [ReplayUser(f"u{i}", cache) for i in range(3)]
        high = MultiUserMiner(
            dag, replay_users, FixedSampleAggregator(0.6, sample_size=3)
        ).run()
        assert high.questions <= low.questions
        assert set(high.msps) == {1, 2}


class TestSpecializationAndPruning:
    def test_specialization_answers_counted(self, dag):
        class SpecUser(FunctionUser):
            def wants_specialization(self):
                return True

            def choose_specialization(self, node, candidates):
                for candidate in candidates:
                    if candidate in SIGNIFICANT:
                        return (candidate, 1.0)
                return None

        aggregator = FixedSampleAggregator(0.5, sample_size=2)
        users = [
            SpecUser(f"u{i}", lambda n: 1.0 if n in SIGNIFICANT else 0.0)
            for i in range(2)
        ]
        result = MultiUserMiner(dag, users, aggregator).run()
        assert result.stats.specialization > 0
        assert set(result.msps) == set(
            brute_force_msps(dag, lambda n: n in SIGNIFICANT)
        )

    def test_none_of_these_zeroes_candidates(self, dag):
        class NoneUser(FunctionUser):
            def wants_specialization(self):
                return True

            def choose_specialization(self, node, candidates):
                return None

        aggregator = FixedSampleAggregator(0.5, sample_size=2)
        users = [NoneUser(f"u{i}", lambda n: 1.0 if n == 0 else 0.0) for i in range(2)]
        result = MultiUserMiner(dag, users, aggregator).run()
        assert result.stats.none_of_these > 0
        # root significant, all its successors zeroed -> root is the MSP
        assert result.msps == [0]

    def test_pruning_click_stats_and_effect(self, dag):
        class PruneUser(FunctionUser):
            def __init__(self, member_id, fn):
                super().__init__(member_id, fn)
                self._pruned = False

            def prune_value(self, node):
                if node == 1 and not self._pruned:
                    self._pruned = True
                    return "token-1"
                return None

            def matches_prune(self, node, token):
                return token == "token-1" and node in {1, 3, 4, 6, 7}

        aggregator = FixedSampleAggregator(0.5, sample_size=2)
        users = [
            PruneUser(f"u{i}", lambda n: 1.0 if n in SIGNIFICANT else 0.0)
            for i in range(2)
        ]
        result = MultiUserMiner(dag, users, aggregator).run()
        assert result.stats.pruning_clicks == 2
        # the pruning click answers node 1 with support 0 for both users
        assert aggregator.average_support(1) == 0.0
