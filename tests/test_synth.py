"""Tests for the synthetic DAG and MSP-placement generators."""

import pytest

from repro.synth import (
    PlantedSignificance,
    dag_statistics,
    generate_dag,
    layer_sizes,
    place_msps,
)


class TestLayerSizes:
    def test_monotone_ramp(self):
        sizes = layer_sizes(500, 7)
        assert sizes[0] == 1
        assert sizes[-1] == 500
        assert sizes == sorted(sizes)

    def test_depth_one(self):
        assert layer_sizes(10, 1) == [1, 10]

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            layer_sizes(10, 0)
        with pytest.raises(ValueError):
            layer_sizes(0, 3, root_count=1)


class TestGenerateDag:
    def test_requested_shape(self):
        dag = generate_dag(width=100, depth=5, seed=1)
        stats = dag_statistics(dag)
        assert stats["height"] == 5
        assert stats["width"] == 100
        assert stats["roots"] == 1

    def test_every_node_reachable_from_root(self):
        dag = generate_dag(width=60, depth=4, seed=2)
        (root,) = dag.roots()
        assert len(dag.descendants(root)) == len(dag)

    def test_valid_fraction(self):
        dag = generate_dag(width=80, depth=4, seed=3, valid_fraction=0.5)
        assert len(dag.valid_nodes()) == round(0.5 * len(dag))

    def test_valid_nodes_are_the_specific_ones(self):
        dag = generate_dag(width=80, depth=4, seed=3, valid_fraction=0.3)
        valid_depths = [dag.depth(n) for n in dag.valid_nodes()]
        invalid = [n for n in dag.nodes() if not dag.is_valid(n)]
        invalid_depths = [dag.depth(n) for n in invalid]
        assert min(valid_depths) >= max(0, max(invalid_depths) - 1)

    def test_deterministic_by_seed(self):
        a = generate_dag(width=50, depth=3, seed=7)
        b = generate_dag(width=50, depth=3, seed=7)
        assert set(a.nodes()) == set(b.nodes())
        for node in a.nodes():
            assert set(a.successors(node)) == set(b.successors(node))


class TestPlaceMsps:
    def test_count_and_incomparability(self):
        dag = generate_dag(width=100, depth=5, seed=1)
        planted = place_msps(dag, 8, seed=1)
        assert len(planted.msps) == 8
        for a in planted.msps:
            for b in planted.msps:
                if a != b:
                    assert not dag.leq(a, b)

    def test_significance_is_downward_closed(self):
        dag = generate_dag(width=100, depth=5, seed=2)
        planted = place_msps(dag, 5, seed=2)
        for node in dag.nodes():
            if planted.is_significant(node):
                for ancestor in dag.ancestors(node):
                    assert planted.is_significant(ancestor)

    def test_msps_are_maximal_significant(self):
        dag = generate_dag(width=100, depth=5, seed=3)
        planted = place_msps(dag, 5, seed=3)
        for msp in planted.msps:
            for successor in dag.successors(msp):
                assert not planted.is_significant(successor)

    def test_valid_only_placement(self):
        dag = generate_dag(width=100, depth=5, seed=4, valid_fraction=0.4)
        planted = place_msps(dag, 6, valid_only=True, seed=4)
        assert planted.valid_msps() == planted.msps

    def test_support_values(self):
        dag = generate_dag(width=60, depth=4, seed=5)
        planted = place_msps(dag, 3, seed=5)
        for node in dag.nodes():
            expected = 1.0 if planted.is_significant(node) else 0.0
            assert planted.support(node) == expected

    def test_policies_produce_requested_counts(self):
        dag = generate_dag(width=120, depth=5, seed=6)
        for policy in ("uniform", "nearby", "far"):
            planted = place_msps(dag, 5, policy=policy, seed=6)
            assert len(planted.msps) == 5

    def test_unknown_policy_rejected(self):
        dag = generate_dag(width=50, depth=3, seed=0)
        with pytest.raises(ValueError):
            place_msps(dag, 3, policy="weird")
