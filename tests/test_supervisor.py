"""Tests for the shard fleet supervisor (``repro.service.supervisor``).

The pure pieces (config, incident bookkeeping, the alive-aware ring
churn that degraded mode rides on) get direct unit tests; detection and
recovery are exercised against real spawned worker processes — a ping
answered by a live shard, a SIGKILLed worker caught by exit-code watch,
a SIGSTOP'd worker caught by the missed-heartbeat path, and the
degrade-after-budget fallback.  The end-to-end campaigns run under the
serial-MSP-identity oracle, supervision on.
"""

import os
import signal
import time

import pytest

from repro.service import ShardSupervisor, SupervisorConfig
from repro.service.shard import (
    HashRing,
    ShardCoordinator,
    run_sharded_simulation,
    split_quota,
)
from repro.service.shard.worker import member_ids
from repro.service.simulation import DOMAINS

DEADLINE = 30.0  # per-test wall budget for spawn + detect + restart


def make_coordinator(supervisor, **overrides):
    options = dict(shards=2, crowd_size=6, sample_size=3, domain="demo", seed=0)
    options.update(overrides)
    return ShardCoordinator(DOMAINS["demo"](), supervisor=supervisor, **options)


def tick_until(supervisor, coordinator, predicate, deadline=DEADLINE):
    """Drive the supervision loop by hand until ``predicate`` holds."""
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        supervisor.tick(coordinator)
        if predicate():
            return
        coordinator._drain(0.02)
    raise AssertionError(f"supervisor never converged: {supervisor.report()}")


class TestConfigAndReport:
    def test_defaults(self):
        cfg = SupervisorConfig()
        assert cfg.heartbeat_interval < cfg.heartbeat_timeout
        assert cfg.max_restarts >= 1
        assert cfg.restart_backoff > 0

    def test_empty_report_shape(self):
        report = ShardSupervisor().report()
        assert report["deaths"] == []
        assert report["restarts"] == 0
        assert report["restart_failures"] == 0
        assert report["degraded"] == []
        assert report["restart_seconds"] == []
        assert report["restart_p95_seconds"] is None

    def test_record_death_dedupes_per_incident(self):
        supervisor = ShardSupervisor()
        supervisor.record_death(1, "missed heartbeat")
        supervisor.record_death(1, "process exited (code -9)")
        # one open incident per shard: the second report is the same
        # corpse seen again, not a new death
        assert supervisor.deaths == [{"shard": 1, "reason": "missed heartbeat"}]

    def test_restart_p95_is_nearest_rank(self):
        supervisor = ShardSupervisor()
        supervisor.restart_seconds = [0.1, 0.2, 0.3, 0.4, 10.0]
        assert supervisor.report()["restart_p95_seconds"] == 10.0


class TestAliveAwareRing:
    """The churn property degraded mode rides on (``docs/SHARDING.md``)."""

    def test_only_dead_shards_members_move(self):
        ring = HashRing(3)
        members = member_ids(60)
        before = ring.partition(members)
        after = ring.partition(members, alive={0, 2})
        assert after[1] == []  # the dead shard owns nothing
        for survivor in (0, 2):
            assert set(before[survivor]) <= set(after[survivor])
        assert sorted(sum(after, [])) == sorted(members)

    def test_reassignment_is_deterministic(self):
        members = member_ids(40)
        assert HashRing(3).partition(members, alive={1, 2}) == HashRing(
            3
        ).partition(members, alive={1, 2})

    def test_empty_alive_set_rejected(self):
        ring = HashRing(2)
        with pytest.raises(ValueError):
            ring.shard_of("m0", alive=set())

    def test_degraded_quota_still_sums(self):
        ring = HashRing(3)
        partition = ring.partition(member_ids(9), alive={0, 1})
        quotas = split_quota(3, [len(p) for p in partition])
        assert sum(quotas) == 3
        assert quotas[2] == 0


class TestDetectionAndRestart:
    def test_ping_answered_by_live_shard(self):
        supervisor = ShardSupervisor(SupervisorConfig(heartbeat_interval=0.01))
        coordinator = make_coordinator(supervisor, shards=1)
        try:
            coordinator.start()
            handle = coordinator._handles[0]
            assert coordinator.ping_shard(0)
            assert handle.ping_sent is not None
            deadline = time.monotonic() + DEADLINE
            while handle.ping_sent is not None:
                assert time.monotonic() < deadline, "pong never arrived"
                coordinator._drain(0.02)
            assert handle.alive
            assert supervisor.deaths == []
        finally:
            coordinator.close()

    def test_process_exit_detected_and_restarted(self):
        supervisor = ShardSupervisor(SupervisorConfig(restart_backoff=0.01))
        coordinator = make_coordinator(supervisor)
        try:
            coordinator.start()
            victim = coordinator._handles[0]
            os.kill(victim.process.pid, signal.SIGKILL)
            deadline = time.monotonic() + DEADLINE
            while victim.process.is_alive():
                assert time.monotonic() < deadline, "worker never exited"
                time.sleep(0.01)
            tick_until(
                supervisor, coordinator, lambda: supervisor.restarts >= 1
            )
            assert supervisor.deaths[0]["shard"] == 0
            assert "process exited" in supervisor.deaths[0]["reason"]
            assert victim.alive  # respawned, ready frame seen
            report = supervisor.report()
            assert len(report["restart_seconds"]) == 1
            assert report["restart_p95_seconds"] is not None
        finally:
            coordinator.close()

    def test_hang_caught_by_missed_heartbeat(self):
        supervisor = ShardSupervisor(
            SupervisorConfig(
                heartbeat_interval=0.05,
                heartbeat_timeout=0.2,
                restart_backoff=0.01,
            )
        )
        coordinator = make_coordinator(supervisor, shards=1)
        try:
            coordinator.start()
            handle = coordinator._handles[0]
            coordinator.hang_shard(0)  # SIGSTOP: alive process, dead protocol
            tick_until(
                supervisor, coordinator, lambda: supervisor.restarts >= 1
            )
            assert supervisor.deaths[0]["reason"] == "missed heartbeat"
            assert handle.alive
        finally:
            coordinator.close()

    def test_degrade_after_restart_budget_spent(self):
        supervisor = ShardSupervisor(SupervisorConfig(max_restarts=0))
        coordinator = make_coordinator(supervisor, shards=2)
        try:
            coordinator.start()
            coordinator.kill_shard(0)
            # first tick adopts the corpse, a later one degrades it
            tick_until(
                supervisor, coordinator, lambda: supervisor.degraded == [0]
            )
            assert coordinator.retired_shards() == [0]
            assert coordinator.partitions[0] == []
            flat = sorted(sum(coordinator.partitions, []))
            assert flat == sorted(member_ids(coordinator.crowd_size))
            assert sum(coordinator.quotas) == coordinator.sample_size
            # the incident is closed: further ticks change nothing
            supervisor.tick(coordinator)
            assert supervisor.degraded == [0]
        finally:
            coordinator.close()


class TestSupervisedCampaigns:
    """End to end under the serial-MSP-identity oracle."""

    def test_supervised_kill_auto_restart_identity(self, tmp_path):
        report = run_sharded_simulation(
            domain="demo", shards=3, sessions=3, crowd_size=9,
            sample_size=3, seed=0, durable_dir=tmp_path,
            chaos_kill=(1, 4), chaos_kill_mode="supervised",
            supervise=True,
            supervisor_config=SupervisorConfig(
                heartbeat_interval=0.05, restart_backoff=0.01
            ),
            verify=True,
        )
        assert report["chaos"]["triggered"]
        assert report["chaos"]["mode"] == "supervised"
        assert report["supervisor"]["restarts"] >= 1
        assert not report["timed_out"]
        assert report["verified"], report["mismatches"]

    def test_supervised_degrade_identity(self, tmp_path):
        # a restart budget of zero forces the degrade path: the victim
        # is retired, its members re-hash onto the survivors, and the
        # campaign must still land on the serial MSP set
        report = run_sharded_simulation(
            domain="demo", shards=3, sessions=3, crowd_size=9,
            sample_size=3, seed=0, durable_dir=tmp_path,
            chaos_kill=(1, 4), chaos_kill_mode="supervised",
            supervise=True,
            supervisor_config=SupervisorConfig(max_restarts=0),
            verify=True,
        )
        assert report["chaos"]["triggered"]
        assert report["supervisor"]["degraded"] == [1]
        assert report["retired_shards"] == [1]
        assert not report["timed_out"]
        assert report["verified"], report["mismatches"]

    def test_supervised_mode_requires_supervisor(self):
        with pytest.raises(ValueError, match="supervise=True"):
            run_sharded_simulation(
                domain="demo", shards=2, sessions=1,
                chaos_kill=(0, 1), chaos_kill_mode="supervised",
                durable_dir=".",
            )
        with pytest.raises(ValueError, match="chaos_kill_mode"):
            run_sharded_simulation(
                domain="demo", shards=2, sessions=1,
                chaos_kill_mode="sideways",
            )
